//! Segment-faulting scan kernels over a [`TieredTable`].
//!
//! Each kernel is the tiered twin of a `_packed` kernel in
//! [`crate::scan`], and runs in three phases:
//!
//! 1. **Plan** — classify every block of the scan range against the
//!    always-resident [`BlockMeta`](super::BlockMeta), exactly as
//!    [`Block::classify`] would. Blocks proven non-matching are skipped
//!    *without any I/O*: a cold segment whose every block skips is never
//!    read. Planning also decides, per surviving block, which segments the
//!    emit phase will touch — probe columns for masks, the aggregation
//!    column for values, nothing for whole-block exact accepts (those are
//!    answered from the cumulative sidecar).
//! 2. **Fault** — acquire every needed segment through the
//!    [`SegmentCache`](super::SegmentCache), pinning them for the duration
//!    of the scan. Any load failure returns a typed
//!    [`StorageError`] here, *before the visitor has seen a single row*:
//!    a failed tiered scan has no partial results and leaves `stats`
//!    untouched, so callers can retry wholesale.
//! 3. **Emit** — infallible; walks the plan against the pinned segments.
//!    Results, row order, and every pre-existing [`ScanStats`] counter
//!    (`blocks_*` included) are bit-identical to
//!    [`scan_checked_dims_packed`](crate::scan::scan_checked_dims_packed)
//!    over the fully-resident compressed table (with no cumulative
//!    column); only the `segments_*` counters are new.

use super::backend::StorageError;
use super::cache::LoadedSegment;
use super::table::TieredTable;
use crate::block::{Block, BlockMask, BlockMatch, BLOCK_LEN};
use crate::query::RangeQuery;
use crate::stats::ScanStats;
use crate::visitor::Visitor;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

/// Per-block outcome of the planning phase.
enum BlockPlan {
    /// Every check accepts the whole block; `full` is true when the scan
    /// range covers all of its rows (exact-capable visitors then need no
    /// data at all — the sum comes from the cumulative sidecar).
    Accept { b: usize, full: bool },
    /// Surviving checks to answer in the delta domain: `(dim, dlo, dhi)`.
    Probe {
        b: usize,
        checks: Vec<(usize, u64, u64)>,
    },
}

/// The segments pinned for one scan, keyed by `(dim, segment)`.
struct Pinned {
    map: BTreeMap<(usize, usize), Arc<LoadedSegment>>,
}

impl Pinned {
    /// The loaded block holding `b` of column `dim` (must have been
    /// planned as needed).
    #[inline]
    fn block<'a>(&'a self, table: &TieredTable, dim: usize, b: usize) -> &'a Block {
        let seg = table.segment_of_block(b);
        let seg_data = self
            .map
            .get(&(dim, seg))
            .expect("planned segment not pinned");
        &seg_data.blocks[b - table.spans()[seg].first_block]
    }

    /// Value of `row` in column `dim`.
    #[inline]
    fn value(&self, table: &TieredTable, dim: usize, row: usize) -> u64 {
        self.block(table, dim, row / BLOCK_LEN).get(row % BLOCK_LEN)
    }
}

/// Tiered twin of [`scan_checked_dims_packed`](crate::scan::scan_checked_dims_packed).
///
/// On success the visitor observes exactly the rows (in exactly the order)
/// the resident packed kernel would emit, and `stats` gains identical
/// pre-existing counters plus the tier counters. On error the visitor and
/// `stats` are untouched.
pub fn scan_checked_dims_tiered(
    table: &TieredTable,
    checks: &[(usize, u64, u64)],
    start: usize,
    end: usize,
    agg_dim: Option<usize>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) -> Result<(), StorageError> {
    if start >= end {
        return Ok(());
    }
    // Fold `needs_value` in once: a visitor that ignores values gets zeros
    // and costs no aggregation-column I/O, mirroring the resident kernels'
    // `Some(d) if visitor.needs_value()` arms.
    let agg = match agg_dim {
        Some(d) if visitor.needs_value() => Some(d),
        _ => None,
    };
    if checks.is_empty() {
        return visit_all_tiered(table, start, end, agg, visitor, stats);
    }

    // Phase 1: plan from resident metadata. Counters accumulate in locals
    // so a fault failure leaves `stats` untouched.
    let supports_exact = visitor.supports_exact();
    let mut plans: Vec<BlockPlan> = Vec::new();
    let mut needed: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    let mut skipped: u64 = 0;
    'blocks: for b in start / BLOCK_LEN..=(end - 1) / BLOCK_LEN {
        let meta_len = table.tiered_column(checks[0].0).meta()[b].len as usize;
        let bs = (b * BLOCK_LEN).max(start);
        let be = (b * BLOCK_LEN + meta_len).min(end);
        let full = bs == b * BLOCK_LEN && be == b * BLOCK_LEN + meta_len;
        let mut probe_checks: Vec<(usize, u64, u64)> = Vec::new();
        for &(d, lo, hi) in checks {
            match table.tiered_column(d).meta()[b].classify(lo, hi) {
                BlockMatch::Skip => {
                    skipped += 1;
                    continue 'blocks;
                }
                BlockMatch::Accept => {}
                BlockMatch::Probe { dlo, dhi } => probe_checks.push((d, dlo, dhi)),
            }
        }
        let seg = table.segment_of_block(b);
        if probe_checks.is_empty() {
            // Whole-block exact accepts answer from the cumulative sidecar
            // with zero data access; every other accept needs the
            // aggregation column (when the visitor wants values).
            if let Some(d) = agg {
                if !(supports_exact && full) {
                    needed.insert((d, seg));
                }
            }
            plans.push(BlockPlan::Accept { b, full });
        } else {
            for &(d, _, _) in &probe_checks {
                needed.insert((d, seg));
            }
            if let Some(d) = agg {
                needed.insert((d, seg));
            }
            plans.push(BlockPlan::Probe {
                b,
                checks: probe_checks,
            });
        }
    }

    // Phase 2: fault. Errors surface here, before any emission.
    let (pinned, faulted, hit) = fault_segments(table, &needed)?;

    // Referenced columns × overlapping segments, minus what we pinned:
    // segments whose data the scan never read.
    let mut ref_dims: std::collections::BTreeSet<usize> =
        checks.iter().map(|&(d, _, _)| d).collect();
    if let Some(d) = agg {
        ref_dims.insert(d);
    }
    let first_seg = table.segment_of_block(start / BLOCK_LEN);
    let last_seg = table.segment_of_block((end - 1) / BLOCK_LEN);
    let overlapping = (ref_dims.len() * (last_seg - first_seg + 1)) as u64;
    let seg_skipped = overlapping - needed.len() as u64;

    // Phase 3: emit — infallible.
    timed(stats, |stats| {
        stats.points_scanned += (end - start) as u64;
        stats.blocks_skipped += skipped;
        stats.segments_faulted += faulted;
        stats.segments_hit += hit;
        stats.segments_skipped += seg_skipped;
        'plans: for plan in &plans {
            match *plan {
                BlockPlan::Accept { b, full } => {
                    stats.blocks_accepted += 1;
                    let meta_len = table.tiered_column(checks[0].0).meta()[b].len as usize;
                    let bs = (b * BLOCK_LEN).max(start);
                    let be = (b * BLOCK_LEN + meta_len).min(end);
                    emit_accepted_tiered(table, &pinned, b, bs, be, full, agg, visitor);
                }
                BlockPlan::Probe {
                    b,
                    checks: ref probe_checks,
                } => {
                    stats.blocks_probed += 1;
                    let meta_len = table.tiered_column(checks[0].0).meta()[b].len as usize;
                    let bs = (b * BLOCK_LEN).max(start);
                    let be = (b * BLOCK_LEN + meta_len).min(end);
                    let off_s = bs - b * BLOCK_LEN;
                    let off_e = be - b * BLOCK_LEN;
                    let mut mask_acc: Option<BlockMask> = None;
                    for &(d, dlo, dhi) in probe_checks {
                        let m = pinned.block(table, d, b).match_mask(dlo, dhi, off_s, off_e);
                        let acc = match &mut mask_acc {
                            None => mask_acc.insert(m),
                            Some(acc) => {
                                acc[0] &= m[0];
                                acc[1] &= m[1];
                                acc
                            }
                        };
                        if *acc == [0, 0] {
                            continue 'plans;
                        }
                    }
                    let m = mask_acc.expect("probe plan has at least one check");
                    for (wi, &word) in m.iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let i = wi * 64 + bits.trailing_zeros() as usize;
                            bits &= bits - 1;
                            let row = b * BLOCK_LEN + i;
                            let v = match agg {
                                Some(d) => pinned.value(table, d, row),
                                None => 0,
                            };
                            visitor.visit(row, v);
                        }
                    }
                }
            }
        }
    });
    Ok(())
}

/// Tiered twin of [`scan_filtered_packed`](crate::scan::scan_filtered_packed).
pub fn scan_filtered_tiered(
    table: &TieredTable,
    query: &RangeQuery,
    start: usize,
    end: usize,
    agg_dim: Option<usize>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) -> Result<(), StorageError> {
    let checks: Vec<(usize, u64, u64)> = query
        .filtered_dims()
        .into_iter()
        .map(|d| {
            let (lo, hi) = query.bound(d).expect("filtered dim has a bound");
            (d, lo, hi)
        })
        .collect();
    scan_checked_dims_tiered(table, &checks, start, end, agg_dim, visitor, stats)
}

/// Tiered twin of [`scan_full_packed`](crate::scan::scan_full_packed).
pub fn scan_full_tiered(
    table: &TieredTable,
    query: &RangeQuery,
    agg_dim: Option<usize>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) -> Result<(), StorageError> {
    scan_filtered_tiered(table, query, 0, table.len(), agg_dim, visitor, stats)
}

/// The empty-check path: every row matches. Mirrors
/// [`scan_checked_dims`](crate::scan::scan_checked_dims) with no checks —
/// per-row `visit` calls, never the exact path.
fn visit_all_tiered(
    table: &TieredTable,
    start: usize,
    end: usize,
    agg: Option<usize>,
    visitor: &mut dyn Visitor,
    stats: &mut ScanStats,
) -> Result<(), StorageError> {
    let mut needed: std::collections::BTreeSet<(usize, usize)> = std::collections::BTreeSet::new();
    if let Some(d) = agg {
        for b in start / BLOCK_LEN..=(end - 1) / BLOCK_LEN {
            needed.insert((d, table.segment_of_block(b)));
        }
    }
    let (pinned, faulted, hit) = fault_segments(table, &needed)?;
    timed(stats, |stats| {
        stats.points_scanned += (end - start) as u64;
        stats.segments_faulted += faulted;
        stats.segments_hit += hit;
        for row in start..end {
            let v = match agg {
                Some(d) => pinned.value(table, d, row),
                None => 0,
            };
            visitor.visit(row, v);
        }
    });
    Ok(())
}

/// Acquire every needed segment, returning the pin map and the
/// fault/hit split. All-or-nothing: the first failure aborts the scan.
fn fault_segments(
    table: &TieredTable,
    needed: &std::collections::BTreeSet<(usize, usize)>,
) -> Result<(Pinned, u64, u64), StorageError> {
    let mut map = BTreeMap::new();
    let (mut faulted, mut hit) = (0u64, 0u64);
    for &(dim, seg) in needed {
        let (loaded, was_fault) = table.cache().acquire(table.segment_key(dim, seg))?;
        if was_fault {
            faulted += 1;
        } else {
            hit += 1;
        }
        map.insert((dim, seg), loaded);
    }
    Ok((Pinned { map }, faulted, hit))
}

/// Emit every row of an accepted block range `[bs, be)`. Mirrors
/// `emit_accepted` in [`crate::scan`] with `cumulative: None` — except
/// that a full-block exact accept takes its sum from the resident
/// cumulative sidecar instead of touching data (the sums are equal: both
/// are the wrapping row sum).
#[allow(clippy::too_many_arguments)]
fn emit_accepted_tiered(
    table: &TieredTable,
    pinned: &Pinned,
    b: usize,
    bs: usize,
    be: usize,
    full: bool,
    agg: Option<usize>,
    visitor: &mut dyn Visitor,
) {
    if visitor.supports_exact() {
        let sum = match agg {
            Some(d) if full => table.tiered_column(d).block_sum(b),
            Some(d) => {
                let mut s = 0u64;
                for row in bs..be {
                    s = s.wrapping_add(pinned.value(table, d, row));
                }
                s
            }
            None => 0,
        };
        visitor.visit_exact_sum(be - bs, sum);
    } else {
        for row in bs..be {
            let v = match agg {
                Some(d) => pinned.value(table, d, row),
                None => 0,
            };
            visitor.visit(row, v);
        }
    }
}

/// Run `f`, adding its duration to `stats.scan_ns` when scan timing is
/// enabled (same switch as the resident kernels).
#[inline]
fn timed(stats: &mut ScanStats, f: impl FnOnce(&mut ScanStats)) {
    if crate::scan::scan_timing_enabled() {
        let t0 = Instant::now();
        f(stats);
        stats.scan_ns += t0.elapsed().as_nanos() as u64;
    } else {
        f(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::super::backend::MemBackend;
    use super::super::cache::TierConfig;
    use super::*;
    use crate::scan::scan_checked_dims_packed;
    use crate::table::Table;
    use crate::visitor::{CollectVisitor, CountVisitor, SumVisitor};
    use std::sync::Arc;

    /// Records every (row, value) pair in visit order — the strictest
    /// observer: any difference in rows, order, or values shows up.
    #[derive(Debug, Default, Clone, PartialEq, Eq)]
    struct RowValueVisitor {
        seen: Vec<(usize, u64)>,
    }

    impl Visitor for RowValueVisitor {
        fn visit(&mut self, row: usize, value: u64) {
            self.seen.push((row, value));
        }
    }

    fn dataset(n: u64) -> Vec<Vec<u64>> {
        vec![
            (0..n).collect(),                                      // sorted
            (0..n).map(|i| (i * 2_654_435_761) % 1_000).collect(), // scattered
            (0..n).map(|i| i % 7).collect(),                       // low-cardinality payload
        ]
    }

    fn pair(n: u64, budget: usize) -> (TieredTable, Table) {
        let mut resident = Table::from_columns(dataset(n));
        let tiered = TieredTable::seal(
            &resident,
            Arc::new(MemBackend::new()),
            TierConfig {
                budget_bytes: budget,
                segment_blocks: 2,
            },
        )
        .unwrap();
        resident.compress();
        (tiered, resident)
    }

    /// Both kernels over the same checks; assert identical collected rows,
    /// values, and shared counters.
    fn assert_parity(
        tiered: &TieredTable,
        resident: &Table,
        checks: &[(usize, u64, u64)],
        start: usize,
        end: usize,
        agg_dim: Option<usize>,
    ) {
        let mut want_v = RowValueVisitor::default();
        let mut want_s = ScanStats::default();
        scan_checked_dims_packed(
            resident,
            checks,
            start,
            end,
            agg_dim,
            None,
            &mut want_v,
            &mut want_s,
        );
        let mut got_v = RowValueVisitor::default();
        let mut got_s = ScanStats::default();
        scan_checked_dims_tiered(tiered, checks, start, end, agg_dim, &mut got_v, &mut got_s)
            .unwrap();
        assert_eq!(got_v, want_v, "row/value mismatch for {checks:?}");
        let mut want_cmp = want_s.sans_tier_counters();
        let mut got_cmp = got_s.sans_tier_counters();
        want_cmp.scan_ns = 0;
        got_cmp.scan_ns = 0;
        assert_eq!(got_cmp, want_cmp, "stats mismatch for {checks:?}");
    }

    #[test]
    fn tiered_matches_packed_across_selectivities() {
        let (tiered, resident) = pair(1_000, 0);
        for checks in [
            vec![(0usize, 100u64, 299u64)],
            vec![(0, 0, 999)],
            vec![(0, 990, 2_000)],
            vec![(1, 0, 499)],
            vec![(0, 100, 899), (1, 250, 750)],
            vec![(0, 5_000, 6_000)], // nothing matches
            vec![(2, 3, 3)],
        ] {
            for agg in [None, Some(2)] {
                assert_parity(&tiered, &resident, &checks, 0, 1_000, agg);
            }
        }
    }

    #[test]
    fn tiered_matches_packed_on_subranges_and_block_edges() {
        let (tiered, resident) = pair(700, 0);
        let checks = vec![(0usize, 50u64, 620u64)];
        for (s, e) in [
            (0, 700),
            (1, 699),
            (128, 256),
            (127, 129),
            (640, 700),
            (256, 256),
        ] {
            assert_parity(&tiered, &resident, &checks, s, e, Some(1));
        }
    }

    #[test]
    fn empty_checks_visits_every_row() {
        let (tiered, resident) = pair(300, 0);
        assert_parity(&tiered, &resident, &[], 10, 290, Some(1));
        assert_parity(&tiered, &resident, &[], 0, 300, None);
    }

    #[test]
    fn skipped_segments_are_never_read() {
        // dim0 sorted: a narrow range touches one segment's worth of blocks;
        // the rest skip from metadata with zero faults.
        let (tiered, _resident) = pair(2_048, 0);
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        scan_checked_dims_tiered(&tiered, &[(0, 0, 100)], 0, 2_048, None, &mut v, &mut s).unwrap();
        assert_eq!(v.count, 101);
        assert!(s.segments_skipped > 0, "{s:?}");
        // Only dim0 segments overlapping [0,100] were faulted (1 probe
        // block → 1 segment).
        assert_eq!(s.segments_faulted + s.segments_hit, 1, "{s:?}");
        assert_eq!(tiered.cache().faults(), 1);
    }

    #[test]
    fn full_block_exact_accept_needs_no_data() {
        // SUM over an accept-everything predicate: every full block answers
        // from the sidecar; zero faults when range is block-aligned.
        let (tiered, resident) = pair(1_024, 0);
        let mut v = SumVisitor::default();
        let mut s = ScanStats::default();
        scan_checked_dims_tiered(
            &tiered,
            &[(0, 0, u64::MAX)],
            0,
            1_024,
            Some(1),
            &mut v,
            &mut s,
        )
        .unwrap();
        let want: u64 = (0..1_024).map(|r| resident.value(r, 1)).sum();
        assert_eq!(v.sum, want);
        assert_eq!(v.count, 1_024);
        assert_eq!(
            s.segments_faulted, 0,
            "sidecar accept must not fault: {s:?}"
        );
        assert_eq!(s.blocks_accepted, 8);
        assert_eq!(tiered.cache().faults(), 0);
    }

    #[test]
    fn count_without_values_needs_no_agg_column() {
        let (tiered, _resident) = pair(512, 0);
        let mut v = CountVisitor::default();
        let mut s = ScanStats::default();
        // Probe blocks need dim0 data, but CountVisitor never needs dim1.
        scan_checked_dims_tiered(&tiered, &[(0, 10, 200)], 0, 512, Some(1), &mut v, &mut s)
            .unwrap();
        assert_eq!(v.count, 191);
        for key in tiered.segment_keys(1) {
            assert!(
                !tiered.cache().is_resident(key),
                "agg column faulted for a COUNT"
            );
        }
    }

    #[test]
    fn filtered_and_full_wrappers_match_packed() {
        let (tiered, resident) = pair(600, 0);
        let q = RangeQuery::all(3)
            .with_range(0, 100, 400)
            .with_range(1, 0, 600);
        for agg in [None, Some(2)] {
            let mut want_v = RowValueVisitor::default();
            let mut want_s = ScanStats::default();
            crate::scan::scan_full_packed(&resident, &q, agg, None, &mut want_v, &mut want_s);
            let mut got_v = RowValueVisitor::default();
            let mut got_s = ScanStats::default();
            scan_full_tiered(&tiered, &q, agg, &mut got_v, &mut got_s).unwrap();
            assert_eq!(got_v, want_v);
            assert_eq!(
                got_s.sans_tier_counters().points_scanned,
                want_s.points_scanned
            );
        }
    }

    #[test]
    fn error_leaves_visitor_and_stats_untouched() {
        use super::super::backend::{FailingBackend, StorageBackend};
        let inner: Arc<dyn StorageBackend> = Arc::new(MemBackend::new());
        let failing = Arc::new(FailingBackend::new(inner));
        let resident = Table::from_columns(dataset(512));
        let tiered = TieredTable::seal(
            &resident,
            failing.clone(),
            TierConfig {
                budget_bytes: 0,
                segment_blocks: 2,
            },
        )
        .unwrap();
        failing.fail_load(1);
        let mut v = CollectVisitor::default();
        let mut s = ScanStats::default();
        let err =
            scan_checked_dims_tiered(&tiered, &[(0, 10, 300)], 0, 512, Some(1), &mut v, &mut s)
                .unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }), "{err}");
        assert!(v.rows.is_empty(), "no partial results on error");
        assert_eq!(s, ScanStats::default(), "stats untouched on error");
        // Retry succeeds: the failure was transient and nothing was emitted.
        scan_checked_dims_tiered(&tiered, &[(0, 10, 300)], 0, 512, Some(1), &mut v, &mut s)
            .unwrap();
        assert_eq!(v.rows.len(), 291);
    }
}
