//! Cumulative-aggregation columns (§7.1, optimization 2).
//!
//! "our implementation allows indexes to speed up common aggregations like
//! SUM by including a column in which the i-th value is the cumulative
//! aggregation of all elements up to index i. In the case of an exact range,
//! the final aggregation result is simply the difference between the
//! cumulative aggregations at the range endpoints."

use crate::column::Column;
use serde::{Deserialize, Serialize};

/// Prefix sums of a column: `prefix[i] = sum(col[0..=i])` (wrapping).
///
/// Stored uncompressed — prefix sums grow monotonically, so block-delta
/// compression saves nothing on them.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CumulativeColumn {
    prefix: Vec<u64>,
}

impl CumulativeColumn {
    /// Build prefix sums over `col`.
    pub fn build(col: &Column) -> Self {
        let mut prefix = Vec::with_capacity(col.len());
        let mut acc = 0u64;
        for i in 0..col.len() {
            acc = acc.wrapping_add(col.get(i));
            prefix.push(acc);
        }
        CumulativeColumn { prefix }
    }

    /// Sum over the inclusive physical range `[start, end]` in O(1).
    ///
    /// # Panics
    /// Panics if `end >= len` or `start > end`.
    #[inline]
    pub fn range_sum(&self, start: usize, end: usize) -> u64 {
        assert!(start <= end && end < self.prefix.len());
        let hi = self.prefix[end];
        if start == 0 {
            hi
        } else {
            hi.wrapping_sub(self.prefix[start - 1])
        }
    }

    /// Number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.prefix.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.prefix.is_empty()
    }

    /// Heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.prefix.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_sums() {
        let col = Column::plain(vec![1, 2, 3, 4, 5]);
        let c = CumulativeColumn::build(&col);
        assert_eq!(c.range_sum(0, 4), 15);
        assert_eq!(c.range_sum(1, 3), 9);
        assert_eq!(c.range_sum(2, 2), 3);
        assert_eq!(c.range_sum(0, 0), 1);
    }

    #[test]
    fn matches_naive_on_compressed() {
        let vals: Vec<u64> = (0..500).map(|i| (i * 7919) % 1000).collect();
        let col = Column::compressed(&vals);
        let c = CumulativeColumn::build(&col);
        for (s, e) in [(0, 499), (10, 20), (100, 100), (0, 1), (250, 499)] {
            let naive: u64 = vals[s..=e].iter().sum();
            assert_eq!(c.range_sum(s, e), naive, "range [{s},{e}]");
        }
    }

    #[test]
    fn wrapping_behaviour() {
        let col = Column::plain(vec![u64::MAX, 5]);
        let c = CumulativeColumn::build(&col);
        assert_eq!(c.range_sum(1, 1), 5);
        assert_eq!(c.range_sum(0, 0), u64::MAX);
        assert_eq!(c.range_sum(0, 1), 4); // wrapped
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let col = Column::plain(vec![1]);
        let c = CumulativeColumn::build(&col);
        let _ = c.range_sum(0, 1);
    }
}
