//! The common interface every multi-dimensional index in this workspace
//! implements (Flood and all eight baselines of §7.2).
//!
//! The query interface follows Appendix A: the caller provides the start and
//! end value of the filter range in each dimension and a visitor that
//! accumulates the aggregation. Execution returns [`ScanStats`] so the
//! Table 2 performance breakdown can be produced for any index.

use crate::cumulative::CumulativeColumn;
use crate::partition::{partition_ranges, RangeChunk};
use crate::query::RangeQuery;
use crate::scan::{scan_exact, scan_filtered, scan_filtered_packed, ScanMode};
use crate::stats::ScanStats;
use crate::table::Table;
use crate::visitor::Visitor;

/// A read-optimized index over a fixed multi-dimensional table.
///
/// # Shared-read contract
///
/// [`execute`](MultiDimIndex::execute) takes `&self` and must not mutate
/// any state observable by another call: all per-query scratch (cell
/// lists, refinement bounds, visitor state, [`ScanStats`]) lives on the
/// caller's stack or in the `&mut` visitor, never in the index. Any number
/// of threads may therefore execute against one index concurrently with no
/// synchronization, and every call returns exactly what a serial run would
/// — this is what lets `flood-exec` fan a batch across its pool and
/// `flood-serve` hand one `Arc`'d snapshot to every in-flight reader while
/// a replacement index is built elsewhere. Implementations that want
/// interior caches must keep them thread-safe *and* result-invisible.
pub trait MultiDimIndex {
    /// Execute `query`, feeding matching rows to `visitor`.
    ///
    /// `agg_dim` names the column whose values the visitor aggregates
    /// (e.g. the SUM column); `None` for COUNT-style visitors.
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats;

    /// Index structure size in bytes — metadata only, *excluding* the data
    /// itself (Fig 8's x-axis).
    fn index_size_bytes(&self) -> usize;

    /// Short display name (used by the benchmark harness).
    fn name(&self) -> &'static str;
}

/// A query plan whose scan work has been split into independent tasks.
///
/// Produced by [`PartitionedScan::plan_scan`] and consumed by the
/// `flood-exec` thread pool: each task runs into its own visitor and
/// [`ScanStats`], and the partial results are merged afterwards via
/// [`crate::visitor::MergeVisitor`] and [`ScanStats::merge`]. Tasks touch
/// disjoint physical row ranges, so executing them in any order — or
/// concurrently — reproduces the serial result exactly (up to visitor
/// ordering, e.g. `CollectVisitor` row order).
pub trait ScanPlan: Sync {
    /// Number of independent scan tasks. Zero when the query matches no
    /// physical range at all (the plan stats still apply).
    fn tasks(&self) -> usize;

    /// Execute task `i` (`0 <= i < tasks()`), feeding matching rows into
    /// `visitor` and counters into `stats` — including the task's
    /// `points_matched`.
    fn run_task(&self, i: usize, visitor: &mut dyn Visitor, stats: &mut ScanStats);

    /// Counters accrued while *planning* (projection, refinement). Merge
    /// these once per query — not once per task — when aggregating.
    fn plan_stats(&self) -> ScanStats;
}

/// An index whose single-query scan work can be partitioned for parallel
/// execution.
///
/// Planning (projection/refinement for Flood, endpoint lookup for a
/// clustered index) stays on the calling thread; the returned [`ScanPlan`]
/// carries the per-task scan work. Indexes whose execution cannot be
/// decomposed (tree traversals interleaving navigation and scanning) simply
/// don't implement this — batch-level parallelism via
/// `flood-exec`'s `execute_batch` still applies to them.
pub trait PartitionedScan: MultiDimIndex + Sync {
    /// Plan `query` into at most `max_tasks` independently scannable tasks.
    fn plan_scan(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        max_tasks: usize,
    ) -> Box<dyn ScanPlan + '_>;
}

/// A ready-made [`ScanPlan`] for indexes whose planned scan work is plain
/// physical row ranges of one table — the full-scan and clustered
/// baselines, or anything else without per-range check lists.
///
/// Ranges are chunked by [`partition_ranges`]; each chunk runs
/// [`scan_filtered`] against the residual query, or [`scan_exact`]
/// (optionally through a cumulative column) when every row in range is
/// known to match. Keeping the chunk-loop/stats protocol here — including
/// `points_matched` attribution — means plan implementors can't drift from
/// the serial counters one copy at a time.
pub struct ChunkedScanPlan<'a> {
    table: &'a Table,
    /// Per-row residual filters; `None` = every row in range matches.
    residual: Option<RangeQuery>,
    agg_dim: Option<usize>,
    /// Cumulative SUM column: answers exact ranges, and — in
    /// [`ScanMode::Packed`] — wholesale-accepted blocks under a residual.
    cumulative: Option<&'a CumulativeColumn>,
    mode: ScanMode,
    tasks: Vec<Vec<RangeChunk>>,
    plan_stats: ScanStats,
}

impl<'a> ChunkedScanPlan<'a> {
    /// Chunk `ranges` into at most `max_tasks` balanced tasks over `table`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        table: &'a Table,
        residual: Option<RangeQuery>,
        agg_dim: Option<usize>,
        cumulative: Option<&'a CumulativeColumn>,
        mode: ScanMode,
        ranges: &[(usize, usize)],
        max_tasks: usize,
        plan_stats: ScanStats,
    ) -> Self {
        ChunkedScanPlan {
            table,
            residual,
            agg_dim,
            cumulative,
            mode,
            tasks: partition_ranges(ranges, max_tasks),
            plan_stats,
        }
    }
}

impl ScanPlan for ChunkedScanPlan<'_> {
    fn tasks(&self) -> usize {
        self.tasks.len()
    }

    fn run_task(&self, i: usize, visitor: &mut dyn Visitor, stats: &mut ScanStats) {
        let mut counter = MatchCount {
            inner: visitor,
            matched: 0,
        };
        for c in &self.tasks[i] {
            match &self.residual {
                Some(residual) if self.mode == ScanMode::Packed => scan_filtered_packed(
                    self.table,
                    residual,
                    c.start,
                    c.end,
                    self.agg_dim,
                    self.cumulative,
                    &mut counter,
                    stats,
                ),
                Some(residual) => scan_filtered(
                    self.table,
                    residual,
                    c.start,
                    c.end,
                    self.agg_dim,
                    &mut counter,
                    stats,
                ),
                None => scan_exact(
                    self.table,
                    c.start,
                    c.end,
                    self.agg_dim,
                    self.cumulative,
                    &mut counter,
                    stats,
                ),
            }
        }
        stats.points_matched += counter.matched;
    }

    fn plan_stats(&self) -> ScanStats {
        self.plan_stats
    }
}

// The shared-read contract above leans on the core store types being
// freely shareable across threads; losing `Send + Sync` (say, by adding an
// `Rc` or a `Cell` to one of them) would surface far away, in the exec and
// serve crates. Pin it here, where the contract is stated.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<Table>();
    _assert_send_sync::<RangeQuery>();
    _assert_send_sync::<ScanStats>();
    _assert_send_sync::<CumulativeColumn>();
};

/// Counts matched points on behalf of [`ScanStats`] while forwarding to the
/// task's visitor.
struct MatchCount<'a> {
    inner: &'a mut dyn Visitor,
    matched: u64,
}

impl Visitor for MatchCount<'_> {
    #[inline]
    fn visit(&mut self, row: usize, value: u64) {
        self.matched += 1;
        self.inner.visit(row, value);
    }

    #[inline]
    fn visit_exact_sum(&mut self, count: usize, sum: u64) {
        self.matched += count as u64;
        self.inner.visit_exact_sum(count, sum);
    }

    fn needs_value(&self) -> bool {
        self.inner.needs_value()
    }

    fn supports_exact(&self) -> bool {
        self.inner.supports_exact()
    }
}
