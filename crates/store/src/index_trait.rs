//! The common interface every multi-dimensional index in this workspace
//! implements (Flood and all eight baselines of §7.2).
//!
//! The query interface follows Appendix A: the caller provides the start and
//! end value of the filter range in each dimension and a visitor that
//! accumulates the aggregation. Execution returns [`ScanStats`] so the
//! Table 2 performance breakdown can be produced for any index.

use crate::query::RangeQuery;
use crate::stats::ScanStats;
use crate::visitor::Visitor;

/// A read-optimized index over a fixed multi-dimensional table.
pub trait MultiDimIndex {
    /// Execute `query`, feeding matching rows to `visitor`.
    ///
    /// `agg_dim` names the column whose values the visitor aggregates
    /// (e.g. the SUM column); `None` for COUNT-style visitors.
    fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> ScanStats;

    /// Index structure size in bytes — metadata only, *excluding* the data
    /// itself (Fig 8's x-axis).
    fn index_size_bytes(&self) -> usize;

    /// Short display name (used by the benchmark harness).
    fn name(&self) -> &'static str;
}
