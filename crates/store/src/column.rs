//! Columns: either plain `Vec<u64>` or block-delta compressed.
//!
//! The paper's store compresses every column by ~77% with block-delta
//! encoding while keeping constant-time element access. We expose both a
//! compressed and a plain representation behind one enum so benchmarks can
//! toggle compression (the MonetDB comparison in §7.1 runs uncompressed).

use crate::block::{Block, BLOCK_LEN};
use serde::{Deserialize, Serialize};

/// A read-only column of `u64` values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Column {
    /// Uncompressed storage, one word per value.
    Plain(Vec<u64>),
    /// Block-delta compressed storage.
    Compressed(CompressedColumn),
}

impl Column {
    /// Build a plain (uncompressed) column.
    pub fn plain(values: Vec<u64>) -> Self {
        Column::Plain(values)
    }

    /// Build a block-delta compressed column.
    pub fn compressed(values: &[u64]) -> Self {
        Column::Compressed(CompressedColumn::compress(values))
    }

    /// Number of values in the column.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            Column::Plain(v) => v.len(),
            Column::Compressed(c) => c.len(),
        }
    }

    /// True when the column holds no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Constant-time access to the value at row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        match self {
            Column::Plain(v) => v[i],
            Column::Compressed(c) => c.get(i),
        }
    }

    /// Materialize the column as a plain vector.
    pub fn to_vec(&self) -> Vec<u64> {
        match self {
            Column::Plain(v) => v.clone(),
            Column::Compressed(c) => c.to_vec(),
        }
    }

    /// Heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        match self {
            Column::Plain(v) => v.len() * 8,
            Column::Compressed(c) => c.size_bytes(),
        }
    }

    /// The compressed representation, when this column has one — the
    /// packed-domain scan path keys off this to skip/probe blocks.
    #[inline]
    pub fn as_compressed(&self) -> Option<&CompressedColumn> {
        match self {
            Column::Plain(_) => None,
            Column::Compressed(c) => Some(c),
        }
    }

    /// Re-order the column by `perm`, producing a new column in the same
    /// representation: `out[i] = self[perm[i]]`.
    pub fn permute(&self, perm: &[u32]) -> Column {
        let reordered: Vec<u64> = perm.iter().map(|&p| self.get(p as usize)).collect();
        match self {
            Column::Plain(_) => Column::Plain(reordered),
            Column::Compressed(_) => Column::compressed(&reordered),
        }
    }
}

/// A column compressed with block-delta encoding (§7.1).
///
/// Values are grouped into blocks of [`BLOCK_LEN`] and each block stores
/// bit-packed deltas to its minimum. `get` is constant-time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompressedColumn {
    blocks: Vec<Block>,
    len: usize,
}

impl CompressedColumn {
    /// Compress `values` into blocks of [`BLOCK_LEN`].
    pub fn compress(values: &[u64]) -> Self {
        let blocks = values.chunks(BLOCK_LEN).map(Block::compress).collect();
        CompressedColumn {
            blocks,
            len: values.len(),
        }
    }

    /// Number of values stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Constant-time access to the value at row `i`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        // BLOCK_LEN is a power of two: the division compiles to a shift.
        self.blocks[i / BLOCK_LEN].get(i % BLOCK_LEN)
    }

    /// The underlying blocks; block `b` holds rows
    /// `b * BLOCK_LEN .. (b + 1) * BLOCK_LEN` (last block possibly short).
    #[inline]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Decompress the whole column.
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len);
        for b in &self.blocks {
            b.decompress_into(&mut out);
        }
        out
    }

    /// Total heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.blocks.iter().map(Block::size_bytes).sum::<usize>()
    }

    /// Compression ratio achieved vs. plain 8-byte storage (0.77 = 77% saved).
    pub fn compression_ratio(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        1.0 - self.size_bytes() as f64 / (self.len as f64 * 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| 1_000_000 + (i * 37) % 5_000)
            .collect()
    }

    #[test]
    fn compressed_roundtrip() {
        let vals = sample(1000);
        let c = CompressedColumn::compress(&vals);
        assert_eq!(c.len(), 1000);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(c.get(i), v);
        }
        assert_eq!(c.to_vec(), vals);
    }

    #[test]
    fn compressed_saves_space_on_local_data() {
        // Values near each other compress well.
        let vals = sample(100_000);
        let c = CompressedColumn::compress(&vals);
        assert!(
            c.compression_ratio() > 0.5,
            "expected >50% savings, got {:.2}",
            c.compression_ratio()
        );
    }

    #[test]
    fn empty_column() {
        let c = CompressedColumn::compress(&[]);
        assert!(c.is_empty());
        assert_eq!(c.to_vec(), Vec::<u64>::new());
    }

    #[test]
    fn column_enum_dispatch() {
        let vals = sample(300);
        let p = Column::plain(vals.clone());
        let c = Column::compressed(&vals);
        assert_eq!(p.len(), c.len());
        for i in 0..vals.len() {
            assert_eq!(p.get(i), c.get(i));
        }
        assert!(c.size_bytes() < p.size_bytes());
    }

    #[test]
    fn permute_reorders() {
        let vals = vec![10, 20, 30, 40];
        let p = Column::plain(vals);
        let out = p.permute(&[3, 1, 0, 2]);
        assert_eq!(out.to_vec(), vec![40, 20, 10, 30]);
    }

    #[test]
    fn permute_preserves_representation() {
        let vals = sample(200);
        let c = Column::compressed(&vals);
        let out = c.permute(&(0..200u32).rev().collect::<Vec<_>>());
        assert!(matches!(out, Column::Compressed(_)));
        let rev: Vec<u64> = vals.iter().rev().copied().collect();
        assert_eq!(out.to_vec(), rev);
    }
}
