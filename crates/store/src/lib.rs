//! # flood-store
//!
//! An in-memory, read-optimized column store — the storage substrate that the
//! Flood index (and every baseline index in this workspace) is built on.
//!
//! This reproduces the custom column store described in §7.1 of
//! *Learning Multi-dimensional Indexes* (SIGMOD 2020):
//!
//! * **Block-delta compression**: each column is divided into consecutive
//!   blocks of 128 values; each value is encoded as a bit-packed delta to the
//!   minimum value of its block. Access remains constant-time
//!   ([`CompressedColumn`]).
//! * **64-bit integer attributes**: strings are dictionary-encoded and floats
//!   are scaled to integers before ingestion ([`encode`]).
//! * **Exact-range scan elision**: when a caller can prove that an entire
//!   physical range matches the query filter, per-value predicate checks are
//!   skipped ([`scan::scan_exact`]).
//! * **Cumulative aggregate columns**: a column whose `i`-th value is the
//!   cumulative aggregation of elements `0..=i`, so a SUM over an exact range
//!   is just two lookups ([`CumulativeColumn`]).
//! * **Packed-domain predicate evaluation**: range filters are resolved
//!   against compressed columns without decoding — blocks are skipped or
//!   accepted wholesale from per-block min/max, and the rest are compared
//!   word-parallel in the delta domain ([`scan::scan_filtered_packed`],
//!   selected per index via [`scan::ScanMode`]).
//!
//! The crate also defines the shared query model ([`RangeQuery`]) and the
//! [`Visitor`] abstraction that all indexes use to process matching records.
//!
//! For tables larger than RAM, the [`tier`] module seals columns into
//! checksummed cold segments behind a pluggable [`StorageBackend`], keeps
//! only per-block metadata and cumulative sidecars resident, and scans
//! through a budgeted [`SegmentCache`] — bit-identical to the resident
//! kernels in results and shared [`ScanStats`] counters.

pub mod block;
pub mod column;
pub mod cumulative;
pub mod disjunction;
pub mod encode;
pub mod index_trait;
pub mod partition;
pub mod query;
pub mod scan;
pub mod stats;
pub mod table;
pub mod tier;
pub mod visitor;

pub use block::{Block, BlockMask, BlockMatch, BLOCK_LEN};
pub use column::{Column, CompressedColumn};
pub use cumulative::CumulativeColumn;
pub use disjunction::{decompose_in_list, execute_disjoint_union};
pub use index_trait::{ChunkedScanPlan, MultiDimIndex, PartitionedScan, ScanPlan};
pub use partition::{partition_ranges, RangeChunk};
pub use query::{QueryRect, RangeQuery};
pub use scan::{
    scan_checked_dims, scan_checked_dims_packed, scan_exact, scan_filtered, scan_filtered_packed,
    scan_full, scan_full_packed, ScanMode,
};
pub use stats::{assert_stats_equivalent, ScanStats, ScanStatsMetrics};
pub use table::Table;
pub use tier::{
    FailingBackend, FileBackend, MemBackend, SegmentCache, SegmentKey, StorageBackend,
    StorageError, TierConfig, TieredDelta, TieredScan, TieredTable,
};
pub use visitor::{CollectVisitor, CountVisitor, MergeVisitor, MinMaxVisitor, SumVisitor, Visitor};
