//! The shared query model: conjunctions of per-dimension inclusive ranges.
//!
//! A filter predicate in the paper is a set of ranges `[qs_i, qe_i]` joined by
//! ANDs (§3). Equality predicates are ranges with `lo == hi`; dimensions
//! absent from the query are unbounded (`0..=u64::MAX`). The intersection of
//! the ranges defines a hyper-rectangle.

use serde::{Deserialize, Serialize};

/// A range query: for each of `d` dimensions an inclusive `[lo, hi]` bound.
///
/// `bounds[i] = None` means dimension `i` is not filtered. All indexes in the
/// workspace execute exactly this query type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeQuery {
    bounds: Vec<Option<(u64, u64)>>,
}

impl RangeQuery {
    /// An unconstrained query over `dims` dimensions (matches everything).
    pub fn all(dims: usize) -> Self {
        RangeQuery {
            bounds: vec![None; dims],
        }
    }

    /// Add an inclusive range filter on `dim`. Returns `self` for chaining.
    ///
    /// # Panics
    /// Panics if `lo > hi` or `dim` is out of bounds.
    pub fn with_range(mut self, dim: usize, lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "range lo {lo} > hi {hi} on dim {dim}");
        self.bounds[dim] = Some((lo, hi));
        self
    }

    /// Add an equality filter (`lo == hi == value`) on `dim`.
    pub fn with_eq(self, dim: usize, value: u64) -> Self {
        self.with_range(dim, value, value)
    }

    /// Intersect `[lo, hi]` into the existing filter on `dim` (or install
    /// it if the dimension was unfiltered). Returns `false` — leaving the
    /// query unchanged — when the intersection would be empty, so callers
    /// deriving implied bounds (correlation rewriting) stay conservative.
    pub fn tighten(&mut self, dim: usize, lo: u64, hi: u64) -> bool {
        let (nlo, nhi) = match self.bound(dim) {
            Some((a, b)) => (a.max(lo), b.min(hi)),
            None => (lo, hi),
        };
        if nlo > nhi {
            return false;
        }
        self.bounds[dim] = Some((nlo, nhi));
        true
    }

    /// Number of dimensions this query is defined over.
    #[inline]
    pub fn dims(&self) -> usize {
        self.bounds.len()
    }

    /// The filter on `dim`, if any.
    #[inline]
    pub fn bound(&self, dim: usize) -> Option<(u64, u64)> {
        self.bounds.get(dim).copied().flatten()
    }

    /// Lower bound on `dim` (0 when unfiltered) — the "lower-left" corner qs.
    #[inline]
    pub fn lo(&self, dim: usize) -> u64 {
        self.bound(dim).map_or(0, |(lo, _)| lo)
    }

    /// Upper bound on `dim` (`u64::MAX` when unfiltered) — the corner qe.
    #[inline]
    pub fn hi(&self, dim: usize) -> u64 {
        self.bound(dim).map_or(u64::MAX, |(_, hi)| hi)
    }

    /// Whether dimension `dim` carries a filter.
    #[inline]
    pub fn filters(&self, dim: usize) -> bool {
        self.bound(dim).is_some()
    }

    /// Indices of the dimensions that carry filters.
    pub fn filtered_dims(&self) -> Vec<usize> {
        (0..self.dims()).filter(|&d| self.filters(d)).collect()
    }

    /// Number of filtered dimensions.
    pub fn num_filtered(&self) -> usize {
        self.bounds.iter().filter(|b| b.is_some()).count()
    }

    /// Whether the point `p` (one value per dimension) matches every filter.
    #[inline]
    pub fn matches(&self, p: &[u64]) -> bool {
        debug_assert_eq!(p.len(), self.dims());
        self.bounds.iter().zip(p).all(|(b, &v)| match b {
            Some((lo, hi)) => *lo <= v && v <= *hi,
            None => true,
        })
    }

    /// Whether a single value matches the filter on `dim`.
    #[inline]
    pub fn matches_dim(&self, dim: usize, v: u64) -> bool {
        match self.bounds[dim] {
            Some((lo, hi)) => lo <= v && v <= hi,
            None => true,
        }
    }

    /// The query hyper-rectangle as explicit `[lo, hi]` corners.
    pub fn rect(&self) -> QueryRect {
        QueryRect {
            lo: (0..self.dims()).map(|d| self.lo(d)).collect(),
            hi: (0..self.dims()).map(|d| self.hi(d)).collect(),
        }
    }
}

/// An explicit hyper-rectangle: the corners `qs` (lo) and `qe` (hi) of §3.2.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRect {
    /// Lower-left corner (per-dimension inclusive lower bounds).
    pub lo: Vec<u64>,
    /// Upper-right corner (per-dimension inclusive upper bounds).
    pub hi: Vec<u64>,
}

impl QueryRect {
    /// Whether this rectangle fully contains the box `[b_lo, b_hi]`.
    pub fn contains_box(&self, b_lo: &[u64], b_hi: &[u64]) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(b_lo.iter().zip(b_hi))
            .all(|((qlo, qhi), (blo, bhi))| qlo <= blo && bhi <= qhi)
    }

    /// Whether this rectangle intersects the box `[b_lo, b_hi]`.
    pub fn intersects_box(&self, b_lo: &[u64], b_hi: &[u64]) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(b_lo.iter().zip(b_hi))
            .all(|((qlo, qhi), (blo, bhi))| qlo <= bhi && blo <= qhi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_matches_everything() {
        let q = RangeQuery::all(3);
        assert!(q.matches(&[0, u64::MAX, 42]));
        assert_eq!(q.num_filtered(), 0);
    }

    #[test]
    fn range_filter() {
        let q = RangeQuery::all(2).with_range(0, 10, 20);
        assert!(q.matches(&[10, 0]));
        assert!(q.matches(&[20, u64::MAX]));
        assert!(!q.matches(&[9, 0]));
        assert!(!q.matches(&[21, 0]));
        assert_eq!(q.filtered_dims(), vec![0]);
    }

    #[test]
    fn equality_is_degenerate_range() {
        let q = RangeQuery::all(2).with_eq(1, 7);
        assert!(q.matches(&[999, 7]));
        assert!(!q.matches(&[999, 8]));
        assert_eq!(q.bound(1), Some((7, 7)));
    }

    #[test]
    fn corners() {
        let q = RangeQuery::all(3).with_range(1, 5, 9);
        let r = q.rect();
        assert_eq!(r.lo, vec![0, 5, 0]);
        assert_eq!(r.hi, vec![u64::MAX, 9, u64::MAX]);
    }

    #[test]
    fn rect_containment_and_intersection() {
        let q = RangeQuery::all(2).with_range(0, 10, 20).with_range(1, 0, 5);
        let r = q.rect();
        assert!(r.contains_box(&[12, 1], &[18, 4]));
        assert!(!r.contains_box(&[12, 1], &[25, 4]));
        assert!(r.intersects_box(&[18, 4], &[30, 9]));
        assert!(!r.intersects_box(&[21, 0], &[30, 5]));
    }

    #[test]
    #[should_panic(expected = "lo")]
    fn inverted_range_panics() {
        let _ = RangeQuery::all(1).with_range(0, 5, 3);
    }
}
