//! A table: a fixed set of equally long columns plus optional helpers
//! (cumulative aggregation columns, permutation application).

use crate::column::Column;
use crate::cumulative::CumulativeColumn;
use serde::{Deserialize, Serialize};

/// An immutable, in-memory, columnar table of `u64` attributes.
///
/// Rows are addressed by physical index `0..len()`. Indexes that impose their
/// own storage order (Flood, Z-order, trees, …) call [`Table::permuted`] once
/// at build time and keep the reordered copy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    columns: Vec<Column>,
    names: Vec<String>,
    len: usize,
}

impl Table {
    /// Build a table from plain column vectors with default names `d0, d1, …`.
    ///
    /// # Panics
    /// Panics if columns have unequal lengths.
    pub fn from_columns(cols: Vec<Vec<u64>>) -> Self {
        let names = (0..cols.len()).map(|i| format!("d{i}")).collect();
        Self::from_named_columns(cols, names)
    }

    /// Build a table from plain column vectors with explicit names.
    pub fn from_named_columns(cols: Vec<Vec<u64>>, names: Vec<String>) -> Self {
        assert_eq!(cols.len(), names.len(), "one name per column");
        let len = cols.first().map_or(0, Vec::len);
        for (i, c) in cols.iter().enumerate() {
            assert_eq!(c.len(), len, "column {i} length mismatch");
        }
        Table {
            columns: cols.into_iter().map(Column::plain).collect(),
            names,
            len,
        }
    }

    /// Compress every column with block-delta encoding (in place).
    pub fn compress(&mut self) {
        for c in &mut self.columns {
            if let Column::Plain(v) = c {
                *c = Column::compressed(v);
            }
        }
    }

    /// Compress only the listed columns, leaving the rest plain — a mixed
    /// table lets hot filter columns scan packed while wide/incompressible
    /// ones stay flat.
    pub fn compress_dims(&mut self, dims: &[usize]) {
        for &d in dims {
            if let Column::Plain(v) = &self.columns[d] {
                self.columns[d] = Column::compressed(v);
            }
        }
    }

    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the table has no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns (dimensions).
    #[inline]
    pub fn dims(&self) -> usize {
        self.columns.len()
    }

    /// Column accessor.
    #[inline]
    pub fn column(&self, dim: usize) -> &Column {
        &self.columns[dim]
    }

    /// Column names.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Value of row `row` in dimension `dim` (constant time).
    #[inline]
    pub fn value(&self, row: usize, dim: usize) -> u64 {
        self.columns[dim].get(row)
    }

    /// Materialize row `row` as a point (one value per dimension).
    pub fn row(&self, row: usize) -> Vec<u64> {
        self.columns.iter().map(|c| c.get(row)).collect()
    }

    /// Materialize row `row` into a reusable buffer (avoids allocation).
    pub fn row_into(&self, row: usize, out: &mut Vec<u64>) {
        out.clear();
        out.extend(self.columns.iter().map(|c| c.get(row)));
    }

    /// A new table whose row `i` is this table's row `perm[i]`.
    pub fn permuted(&self, perm: &[u32]) -> Table {
        assert_eq!(perm.len(), self.len, "permutation length mismatch");
        Table {
            columns: self.columns.iter().map(|c| c.permute(perm)).collect(),
            names: self.names.clone(),
            len: self.len,
        }
    }

    /// Build a cumulative SUM column over dimension `dim` (§7.1 optimization
    /// 2): entry `i` holds `sum(column[0..=i])`.
    pub fn cumulative_sum(&self, dim: usize) -> CumulativeColumn {
        CumulativeColumn::build(&self.columns[dim])
    }

    /// Total heap size of all columns, in bytes.
    pub fn size_bytes(&self) -> usize {
        self.columns.iter().map(Column::size_bytes).sum()
    }

    /// Per-dimension `(min, max)` over the data; `(0,0)` for empty tables.
    pub fn dim_bounds(&self, dim: usize) -> (u64, u64) {
        let col = &self.columns[dim];
        if col.is_empty() {
            return (0, 0);
        }
        let mut mn = u64::MAX;
        let mut mx = 0;
        for i in 0..col.len() {
            let v = col.get(i);
            mn = mn.min(v);
            mx = mx.max(v);
        }
        (mn, mx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        Table::from_columns(vec![vec![1, 2, 3, 4], vec![10, 20, 30, 40]])
    }

    #[test]
    fn construction_and_access() {
        let t = t();
        assert_eq!(t.len(), 4);
        assert_eq!(t.dims(), 2);
        assert_eq!(t.value(2, 1), 30);
        assert_eq!(t.row(3), vec![4, 40]);
    }

    #[test]
    fn row_into_reuses_buffer() {
        let t = t();
        let mut buf = Vec::new();
        t.row_into(0, &mut buf);
        assert_eq!(buf, vec![1, 10]);
        t.row_into(2, &mut buf);
        assert_eq!(buf, vec![3, 30]);
    }

    #[test]
    fn permutation() {
        let t = t().permuted(&[2, 0, 3, 1]);
        assert_eq!(t.row(0), vec![3, 30]);
        assert_eq!(t.row(1), vec![1, 10]);
        assert_eq!(t.row(3), vec![2, 20]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ragged_columns_panic() {
        let _ = Table::from_columns(vec![vec![1], vec![1, 2]]);
    }

    #[test]
    fn compress_preserves_values() {
        let mut t = Table::from_columns(vec![(0..1000).collect(), (1000..2000).collect()]);
        let before: Vec<_> = (0..t.len()).map(|r| t.row(r)).collect();
        t.compress();
        let after: Vec<_> = (0..t.len()).map(|r| t.row(r)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn dim_bounds() {
        let t = t();
        assert_eq!(t.dim_bounds(0), (1, 4));
        assert_eq!(t.dim_bounds(1), (10, 40));
    }

    #[test]
    fn empty_table() {
        let t = Table::from_columns(vec![vec![], vec![]]);
        assert!(t.is_empty());
        assert_eq!(t.dim_bounds(0), (0, 0));
    }
}
