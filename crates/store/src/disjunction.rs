//! Disjunction (OR) support via decomposition (§3).
//!
//! "Typical selections generally also include disjunctions (i.e. OR
//! clauses). However, these can be decomposed into multiple queries over
//! disjoint attribute ranges; hence our focus on ANDs." — this module is
//! that decomposition contract: execute a *union of disjoint conjunctive
//! queries* against any [`MultiDimIndex`], feeding one visitor. Because the
//! rectangles are verified pairwise disjoint, no row can match twice and
//! the union needs no deduplication.

use crate::index_trait::MultiDimIndex;
use crate::query::RangeQuery;
use crate::stats::ScanStats;
use crate::visitor::Visitor;

/// Error: two branch rectangles of a union overlap, so rows could be
/// visited twice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapError {
    /// Indices of the first overlapping pair found.
    pub first: usize,
    /// See `first`.
    pub second: usize,
}

impl std::fmt::Display for OverlapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "disjunction branches {} and {} overlap; decompose into disjoint ranges",
            self.first, self.second
        )
    }
}

impl std::error::Error for OverlapError {}

/// Whether two conjunctive queries can match a common point.
pub fn queries_overlap(a: &RangeQuery, b: &RangeQuery) -> bool {
    debug_assert_eq!(a.dims(), b.dims());
    (0..a.dims()).all(|d| a.lo(d) <= b.hi(d) && b.lo(d) <= a.hi(d))
}

/// Verify all branches are pairwise disjoint.
pub fn check_disjoint(queries: &[RangeQuery]) -> Result<(), OverlapError> {
    for i in 0..queries.len() {
        for j in i + 1..queries.len() {
            if queries_overlap(&queries[i], &queries[j]) {
                return Err(OverlapError {
                    first: i,
                    second: j,
                });
            }
        }
    }
    Ok(())
}

/// Execute the union of pairwise-disjoint conjunctive `queries` against
/// `index`, accumulating into one `visitor`. Returns the merged stats.
///
/// # Errors
/// [`OverlapError`] when two branches could match the same row.
pub fn execute_disjoint_union(
    index: &dyn MultiDimIndex,
    queries: &[RangeQuery],
    agg_dim: Option<usize>,
    visitor: &mut dyn Visitor,
) -> Result<ScanStats, OverlapError> {
    check_disjoint(queries)?;
    let mut stats = ScanStats::default();
    for q in queries {
        stats.merge(&index.execute(q, agg_dim, visitor));
    }
    Ok(stats)
}

/// Decompose an IN-list (`dim IN {v₁, v₂, …}`) plus a base conjunction into
/// disjoint branches: one equality per distinct value.
pub fn decompose_in_list(base: &RangeQuery, dim: usize, values: &[u64]) -> Vec<RangeQuery> {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    sorted
        .into_iter()
        .map(|v| {
            let mut q = RangeQuery::all(base.dims());
            for d in 0..base.dims() {
                if d == dim {
                    q = q.with_eq(d, v);
                } else if let Some((lo, hi)) = base.bound(d) {
                    q = q.with_range(d, lo, hi);
                }
            }
            q
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::scan_full;
    use crate::table::Table;
    use crate::visitor::CountVisitor;

    /// A trivially correct index for the tests.
    struct Scanner(Table);

    impl MultiDimIndex for Scanner {
        fn execute(
            &self,
            query: &RangeQuery,
            agg_dim: Option<usize>,
            visitor: &mut dyn Visitor,
        ) -> ScanStats {
            let mut stats = ScanStats::default();
            scan_full(&self.0, query, agg_dim, visitor, &mut stats);
            stats
        }

        fn index_size_bytes(&self) -> usize {
            0
        }

        fn name(&self) -> &'static str {
            "scanner"
        }
    }

    fn table() -> Table {
        Table::from_columns(vec![
            (0..100u64).map(|i| i % 10).collect(),
            (0..100u64).collect(),
        ])
    }

    #[test]
    fn overlap_detection() {
        let a = RangeQuery::all(2).with_range(0, 0, 5);
        let b = RangeQuery::all(2).with_range(0, 5, 9); // shares value 5
        let c = RangeQuery::all(2).with_range(0, 6, 9);
        assert!(queries_overlap(&a, &b));
        assert!(!queries_overlap(&a, &c));
        assert_eq!(
            check_disjoint(&[a.clone(), b]),
            Err(OverlapError {
                first: 0,
                second: 1
            })
        );
        assert_eq!(check_disjoint(&[a, c]), Ok(()));
    }

    #[test]
    fn overlap_needs_all_dims() {
        // Same range on dim 0 but disjoint on dim 1 ⇒ disjoint overall.
        let a = RangeQuery::all(2).with_range(0, 0, 5).with_range(1, 0, 10);
        let b = RangeQuery::all(2).with_range(0, 0, 5).with_range(1, 11, 20);
        assert!(!queries_overlap(&a, &b));
    }

    #[test]
    fn union_counts_each_row_once() {
        let t = table();
        let idx = Scanner(t);
        // d0 ∈ {2} OR d0 ∈ {7}: 10 rows each.
        let branches = vec![
            RangeQuery::all(2).with_eq(0, 2),
            RangeQuery::all(2).with_eq(0, 7),
        ];
        let mut v = CountVisitor::default();
        let stats = execute_disjoint_union(&idx, &branches, None, &mut v).expect("disjoint");
        assert_eq!(v.count, 20);
        // The toy scanner scans the whole table once per branch.
        assert_eq!(stats.points_scanned, 200);
    }

    #[test]
    fn union_rejects_overlap() {
        let idx = Scanner(table());
        let branches = vec![
            RangeQuery::all(2).with_range(1, 0, 50),
            RangeQuery::all(2).with_range(1, 50, 99),
        ];
        let mut v = CountVisitor::default();
        let err = execute_disjoint_union(&idx, &branches, None, &mut v);
        assert!(err.is_err());
    }

    #[test]
    fn in_list_decomposition() {
        let base = RangeQuery::all(2).with_range(1, 10, 59);
        let branches = decompose_in_list(&base, 0, &[3, 7, 3]);
        assert_eq!(branches.len(), 2, "duplicates collapse");
        assert_eq!(check_disjoint(&branches), Ok(()));
        let idx = Scanner(table());
        let mut v = CountVisitor::default();
        execute_disjoint_union(&idx, &branches, None, &mut v).expect("disjoint");
        // Rows with d1 in 10..=59 and d0 ∈ {3, 7}: 5 each.
        assert_eq!(v.count, 10);
    }
}
