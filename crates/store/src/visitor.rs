//! Visitors accumulate the result of an aggregation over matching records.
//!
//! The paper's query interface (Appendix A) passes "a Visitor object which
//! will accumulate the statistic of the aggregation". Indexes call
//! [`Visitor::visit`] once per matching row, or [`Visitor::visit_exact_sum`]
//! when an exact physical range lets them push a pre-aggregated result (the
//! §7.1 fast paths).

/// Accumulates an aggregate over the rows an index reports as matching.
pub trait Visitor {
    /// Process one matching row. `row` is the physical row id in the index's
    /// storage order; `value` is the row's value in the aggregation column
    /// (0 when the visitor does not need a value, e.g. COUNT).
    fn visit(&mut self, row: usize, value: u64);

    /// Fast path: `count` rows in an exact range matched; their aggregation
    /// column sums to `sum` (from a cumulative column). Default expands to
    /// nothing but bumping the internal state via `visit` is NOT required —
    /// implementations override what they need.
    fn visit_exact_sum(&mut self, count: usize, sum: u64) {
        // Default: treat as `count` anonymous visits totalling `sum`.
        let _ = (count, sum);
        unimplemented!("this visitor does not support the exact-range fast path")
    }

    /// Whether the visitor needs per-row values (SUM does, COUNT does not).
    /// Indexes use this to skip value-column lookups entirely.
    fn needs_value(&self) -> bool {
        true
    }

    /// Whether the visitor supports [`Visitor::visit_exact_sum`].
    fn supports_exact(&self) -> bool {
        false
    }
}

/// A visitor whose partial results can be combined — the requirement for
/// parallel scans (§8: "different cells can be refined and scanned
/// simultaneously").
pub trait MergeVisitor: Visitor + Send {
    /// Fold another worker's accumulator into this one.
    fn merge_from(&mut self, other: Self);
}

impl MergeVisitor for CountVisitor {
    fn merge_from(&mut self, other: Self) {
        self.count += other.count;
    }
}

impl MergeVisitor for SumVisitor {
    fn merge_from(&mut self, other: Self) {
        self.sum = self.sum.wrapping_add(other.sum);
        self.count += other.count;
    }
}

impl MergeVisitor for MinMaxVisitor {
    fn merge_from(&mut self, other: Self) {
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
    }
}

impl MergeVisitor for CollectVisitor {
    fn merge_from(&mut self, mut other: Self) {
        self.rows.append(&mut other.rows);
    }
}

/// COUNT(*) visitor.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountVisitor {
    /// Number of rows visited.
    pub count: u64,
}

impl Visitor for CountVisitor {
    #[inline]
    fn visit(&mut self, _row: usize, _value: u64) {
        self.count += 1;
    }

    #[inline]
    fn visit_exact_sum(&mut self, count: usize, _sum: u64) {
        self.count += count as u64;
    }

    fn needs_value(&self) -> bool {
        false
    }

    fn supports_exact(&self) -> bool {
        true
    }
}

/// SUM(column) visitor. Uses wrapping arithmetic: aggregates of synthetic
/// 64-bit data may exceed `u64::MAX`, and the paper's store works modulo 2⁶⁴.
#[derive(Debug, Default, Clone, Copy)]
pub struct SumVisitor {
    /// Running sum of the aggregation column over visited rows.
    pub sum: u64,
    /// Number of rows visited.
    pub count: u64,
}

impl Visitor for SumVisitor {
    #[inline]
    fn visit(&mut self, _row: usize, value: u64) {
        self.sum = self.sum.wrapping_add(value);
        self.count += 1;
    }

    #[inline]
    fn visit_exact_sum(&mut self, count: usize, sum: u64) {
        self.sum = self.sum.wrapping_add(sum);
        self.count += count as u64;
    }

    fn supports_exact(&self) -> bool {
        true
    }
}

/// Collects the physical row ids of matching records (e.g. to return them).
#[derive(Debug, Default, Clone)]
pub struct CollectVisitor {
    /// Row ids of all visited records, in visit order.
    pub rows: Vec<usize>,
}

impl Visitor for CollectVisitor {
    #[inline]
    fn visit(&mut self, row: usize, _value: u64) {
        self.rows.push(row);
    }

    fn needs_value(&self) -> bool {
        false
    }
}

/// MIN/MAX visitor over the aggregation column.
#[derive(Debug, Clone, Copy)]
pub struct MinMaxVisitor {
    /// Smallest value seen, `u64::MAX` when nothing visited.
    pub min: u64,
    /// Largest value seen, `0` when nothing visited.
    pub max: u64,
    /// Number of rows visited.
    pub count: u64,
}

impl Default for MinMaxVisitor {
    fn default() -> Self {
        MinMaxVisitor {
            min: u64::MAX,
            max: 0,
            count: 0,
        }
    }
}

impl Visitor for MinMaxVisitor {
    #[inline]
    fn visit(&mut self, _row: usize, value: u64) {
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_visitor() {
        let mut v = CountVisitor::default();
        v.visit(0, 10);
        v.visit(5, 0);
        v.visit_exact_sum(7, 999);
        assert_eq!(v.count, 9);
        assert!(!v.needs_value());
        assert!(v.supports_exact());
    }

    #[test]
    fn sum_visitor() {
        let mut v = SumVisitor::default();
        v.visit(0, 10);
        v.visit(1, 32);
        v.visit_exact_sum(2, 100);
        assert_eq!(v.sum, 142);
        assert_eq!(v.count, 4);
    }

    #[test]
    fn sum_visitor_wraps() {
        let mut v = SumVisitor::default();
        v.visit(0, u64::MAX);
        v.visit(1, 2);
        assert_eq!(v.sum, 1);
    }

    #[test]
    fn collect_visitor() {
        let mut v = CollectVisitor::default();
        v.visit(3, 0);
        v.visit(1, 0);
        assert_eq!(v.rows, vec![3, 1]);
    }

    #[test]
    fn merge_visitors() {
        let mut a = CountVisitor::default();
        a.visit(0, 0);
        let mut b = CountVisitor::default();
        b.visit(1, 0);
        b.visit(2, 0);
        a.merge_from(b);
        assert_eq!(a.count, 3);

        let mut s1 = SumVisitor::default();
        s1.visit(0, u64::MAX);
        let mut s2 = SumVisitor::default();
        s2.visit(1, 3);
        s1.merge_from(s2);
        assert_eq!(s1.sum, 2); // wrapping
        assert_eq!(s1.count, 2);

        let mut m1 = MinMaxVisitor::default();
        m1.visit(0, 10);
        let mut m2 = MinMaxVisitor::default();
        m2.visit(1, 3);
        m2.visit(2, 42);
        m1.merge_from(m2);
        assert_eq!((m1.min, m1.max, m1.count), (3, 42, 3));

        let mut c1 = CollectVisitor::default();
        c1.visit(5, 0);
        let mut c2 = CollectVisitor::default();
        c2.visit(9, 0);
        c1.merge_from(c2);
        assert_eq!(c1.rows, vec![5, 9]);
    }

    #[test]
    fn minmax_visitor() {
        let mut v = MinMaxVisitor::default();
        assert_eq!(v.min, u64::MAX);
        v.visit(0, 7);
        v.visit(1, 3);
        v.visit(2, 11);
        assert_eq!((v.min, v.max, v.count), (3, 11, 3));
    }
}
