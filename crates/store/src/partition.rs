//! Splitting a query's physical row ranges into balanced scan tasks.
//!
//! The parallel execution layer (`flood-exec`) schedules one worker per
//! task. Balance matters more than task count: a query's cells can differ
//! in population by orders of magnitude, so tasks are sized by *points*,
//! not by ranges, and a large range is cut at [`BLOCK_LEN`]-aligned
//! boundaries so a cut never splits a compression block. (Range *ends*
//! fall wherever the caller's cells fall — distinct ranges meeting inside
//! one block can still land in different tasks, which is fine for the
//! read-only scans this serves.)
//!
//! Paper map: the ranges being split are the refined per-cell sub-ranges
//! of §3.2 step 3 — after projection and refinement have already shrunk
//! the work to `N_s` points — so splitting them realizes §8's "different
//! cells can be … scanned simultaneously" without touching the index
//! structures. The population skew this guards against is the same
//! skew flattening (§5.1) reduces but does not eliminate (Fig 5's
//! cell-size spread); [`BLOCK_LEN`] alignment preserves the §3 column
//! store's invariant that a compression block is decoded by exactly one
//! scanner. [`RangeChunk::continuation`] exists for Table 2's accounting:
//! merged [`ScanStats`](crate::ScanStats) — `ranges_scanned` included —
//! must be identical to a serial execution, so a range cut across workers
//! still counts once. The packed-domain scan's `blocks_*` counters lean on
//! the same alignment: because a cut never splits a block, each
//! block-subrange of a source range is classified (skipped / accepted /
//! probed) by exactly one task, and the merged counters again match a
//! serial run exactly.

use crate::block::BLOCK_LEN;

/// A contiguous piece of one source range, produced by [`partition_ranges`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeChunk {
    /// Index of the source range this chunk was cut from.
    pub source: usize,
    /// First row of the chunk (inclusive).
    pub start: usize,
    /// One past the last row of the chunk.
    pub end: usize,
    /// True when `start` is not the source range's own start — this chunk
    /// continues a range opened by an earlier chunk. Stats aggregation uses
    /// this to keep `ranges_scanned` identical to a serial scan, which
    /// counts each source range once however many workers it is cut across.
    pub continuation: bool,
}

impl RangeChunk {
    /// Number of rows in the chunk.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the chunk covers no rows (never produced by
    /// [`partition_ranges`]).
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Split `ranges` (half-open `[start, end)` row intervals) into at most
/// `max_tasks` task groups of roughly equal total point count.
///
/// Empty ranges are dropped. Ranges larger than a task's share are cut at
/// [`BLOCK_LEN`]-aligned row indices; every cut after the first within a
/// range is flagged [`RangeChunk::continuation`]. The output is
/// deterministic and covers every input row exactly once, in input order.
pub fn partition_ranges(ranges: &[(usize, usize)], max_tasks: usize) -> Vec<Vec<RangeChunk>> {
    partition_ranges_aligned(ranges, max_tasks, BLOCK_LEN)
}

/// [`partition_ranges`] with an explicit cut alignment.
///
/// Tiered scans pass their segment length (a multiple of [`BLOCK_LEN`]) so
/// a cut never splits a storage segment: every segment is then faulted and
/// pinned by exactly one task, parallel fault counts sum to the serial
/// scan's, and two workers never race to load the same cold segment for
/// one query. Alignments must be a positive multiple of [`BLOCK_LEN`] so
/// block-counter parity (see module docs) is preserved.
///
/// # Panics
/// When `align` is zero or not a multiple of [`BLOCK_LEN`].
pub fn partition_ranges_aligned(
    ranges: &[(usize, usize)],
    max_tasks: usize,
    align: usize,
) -> Vec<Vec<RangeChunk>> {
    assert!(
        align > 0 && align % BLOCK_LEN == 0,
        "cut alignment {align} must be a positive multiple of BLOCK_LEN"
    );
    let max_tasks = max_tasks.max(1);
    let total: usize = ranges
        .iter()
        .map(|&(s, e)| e.saturating_sub(s))
        .sum::<usize>();
    if total == 0 {
        return Vec::new();
    }
    // Each closed task holds ≥ target points, so at most `max_tasks` tasks
    // are ever produced.
    let target = total.div_ceil(max_tasks);
    let mut tasks: Vec<Vec<RangeChunk>> = Vec::new();
    let mut cur: Vec<RangeChunk> = Vec::new();
    let mut cur_points = 0usize;
    for (source, &(start, end)) in ranges.iter().enumerate() {
        if start >= end {
            continue;
        }
        let mut s = start;
        while s < end {
            let cap = (target - cur_points).max(1);
            let cut = if end - s <= cap {
                end
            } else {
                // Prefer the last aligned boundary within capacity; when the
                // capacity is smaller than the distance to the next
                // boundary, overshoot to it rather than splitting a block
                // (or, for tiered scans, a storage segment).
                let down = (s + cap) / align * align;
                if down > s {
                    down
                } else {
                    ((s + cap).div_ceil(align) * align).min(end)
                }
            };
            cur.push(RangeChunk {
                source,
                start: s,
                end: cut,
                continuation: s != start,
            });
            cur_points += cut - s;
            s = cut;
            if cur_points >= target {
                tasks.push(std::mem::take(&mut cur));
                cur_points = 0;
            }
        }
    }
    if !cur.is_empty() {
        tasks.push(cur);
    }
    tasks
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flatten tasks back into covered rows per source range.
    fn coverage(tasks: &[Vec<RangeChunk>], n_sources: usize) -> Vec<Vec<(usize, usize)>> {
        let mut per_source = vec![Vec::new(); n_sources];
        for t in tasks {
            for c in t {
                per_source[c.source].push((c.start, c.end));
            }
        }
        for v in &mut per_source {
            v.sort_unstable();
        }
        per_source
    }

    #[test]
    fn single_range_single_task() {
        let tasks = partition_ranges(&[(0, 1000)], 1);
        assert_eq!(tasks.len(), 1);
        assert_eq!(
            tasks[0],
            vec![RangeChunk {
                source: 0,
                start: 0,
                end: 1000,
                continuation: false
            }]
        );
    }

    #[test]
    fn large_range_splits_block_aligned() {
        let tasks = partition_ranges(&[(0, 10_000)], 4);
        assert_eq!(tasks.len(), 4);
        let mut covered = 0;
        for (i, t) in tasks.iter().enumerate() {
            for c in t {
                covered += c.len();
                if c.continuation {
                    assert_eq!(c.start % BLOCK_LEN, 0, "task {i}: cut not block-aligned");
                }
            }
        }
        assert_eq!(covered, 10_000);
        // Balanced within one block of each other (except the tail task).
        let sizes: Vec<usize> = tasks
            .iter()
            .map(|t| t.iter().map(RangeChunk::len).sum())
            .collect();
        for &s in &sizes[..sizes.len() - 1] {
            assert!(
                (2_500..=2_500 + BLOCK_LEN).contains(&s),
                "unbalanced: {sizes:?}"
            );
        }
    }

    #[test]
    fn never_exceeds_max_tasks() {
        for max in 1..=9 {
            for ranges in [
                vec![(0usize, 17usize); 40],
                vec![(0, 100_000)],
                vec![(5, 6), (10, 1_000), (2_000, 2_001), (3_000, 50_000)],
            ] {
                let tasks = partition_ranges(&ranges, max);
                assert!(tasks.len() <= max, "{max}: {} tasks", tasks.len());
            }
        }
    }

    #[test]
    fn covers_every_row_exactly_once() {
        let ranges = vec![
            (0, 300),
            (300, 301),
            (500, 500),
            (1_000, 7_777),
            (9_000, 9_129),
        ];
        let tasks = partition_ranges(&ranges, 5);
        let cov = coverage(&tasks, ranges.len());
        for (i, &(s, e)) in ranges.iter().enumerate() {
            if s >= e {
                assert!(cov[i].is_empty(), "empty range {i} must produce no chunks");
                continue;
            }
            // Chunks of range i tile [s, e) without gaps or overlap.
            let mut at = s;
            for &(cs, ce) in &cov[i] {
                assert_eq!(cs, at, "gap/overlap in range {i}");
                at = ce;
            }
            assert_eq!(at, e, "range {i} not fully covered");
        }
    }

    #[test]
    fn continuation_flags_count_original_ranges() {
        let ranges = vec![(0, 4_096), (10_000, 14_096)];
        let tasks = partition_ranges(&ranges, 8);
        let chunks: usize = tasks.iter().map(Vec::len).sum();
        let continuations: usize = tasks.iter().flatten().filter(|c| c.continuation).count();
        assert_eq!(chunks - continuations, ranges.len());
    }

    #[test]
    fn segment_aligned_cuts_respect_coarser_boundaries() {
        let seg = 8 * BLOCK_LEN;
        let tasks = partition_ranges_aligned(&[(0, 10 * seg + 37)], 6, seg);
        assert!(tasks.len() <= 6);
        let mut covered = 0;
        for t in &tasks {
            for c in t {
                covered += c.len();
                if c.continuation {
                    assert_eq!(c.start % seg, 0, "cut not segment-aligned");
                }
            }
        }
        assert_eq!(covered, 10 * seg + 37);
    }

    #[test]
    #[should_panic(expected = "multiple of BLOCK_LEN")]
    fn unaligned_alignment_panics() {
        let _ = partition_ranges_aligned(&[(0, 100)], 2, BLOCK_LEN + 1);
    }

    #[test]
    fn empty_input_yields_no_tasks() {
        assert!(partition_ranges(&[], 4).is_empty());
        assert!(partition_ranges(&[(7, 7), (9, 9)], 4).is_empty());
    }

    #[test]
    fn tiny_ranges_group_without_splitting() {
        let ranges: Vec<(usize, usize)> = (0..20).map(|i| (i * 10, i * 10 + 3)).collect();
        let tasks = partition_ranges(&ranges, 4);
        assert!(tasks.len() <= 4);
        for c in tasks.iter().flatten() {
            assert!(!c.continuation, "3-row ranges must never split");
            assert_eq!(c.len(), 3);
        }
    }
}
