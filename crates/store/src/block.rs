//! Bit-packed delta blocks: the unit of compression in the column store.
//!
//! Each [`Block`] stores up to [`BLOCK_LEN`] (=128) `u64` values as deltas to
//! the block minimum, packed at the smallest bit width that fits the largest
//! delta. Random access is constant-time: the value at offset `i` is
//! `min + extract_bits(packed, i * width, width)`.

use serde::{Deserialize, Serialize};

/// Number of values per compression block (fixed at 128, per the paper §7.1).
pub const BLOCK_LEN: usize = 128;

/// A single bit-packed block of up to [`BLOCK_LEN`] values.
///
/// Values are stored as `value - min` at `width` bits each, packed
/// little-endian into `words`. `width == 0` means all values equal `min` and
/// no words are stored.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Block {
    min: u64,
    width: u8,
    len: u16,
    words: Box<[u64]>,
}

impl Block {
    /// Compress a slice of at most [`BLOCK_LEN`] values.
    ///
    /// # Panics
    /// Panics if `values` is empty or longer than [`BLOCK_LEN`].
    pub fn compress(values: &[u64]) -> Self {
        assert!(!values.is_empty(), "cannot compress an empty block");
        assert!(
            values.len() <= BLOCK_LEN,
            "block too large: {} > {}",
            values.len(),
            BLOCK_LEN
        );
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        let range = max - min;
        let width = bits_needed(range);
        let total_bits = width as usize * values.len();
        let n_words = total_bits.div_ceil(64);
        let mut words = vec![0u64; n_words].into_boxed_slice();
        if width > 0 {
            for (i, &v) in values.iter().enumerate() {
                pack(&mut words, i * width as usize, width, v - min);
            }
        }
        Block {
            min,
            width,
            len: values.len() as u16,
            words,
        }
    }

    /// Number of values stored in this block.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the block holds no values (never constructed by `compress`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Constant-time access to the value at offset `i` within the block.
    ///
    /// # Panics
    /// Panics in debug builds if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len as usize);
        if self.width == 0 {
            return self.min;
        }
        self.min + extract(&self.words, i * self.width as usize, self.width)
    }

    /// Minimum value in the block (the delta base).
    #[inline]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Bit width used for deltas in this block.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// Decompress the whole block, appending to `out`.
    pub fn decompress_into(&self, out: &mut Vec<u64>) {
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(self.get(i));
        }
    }

    /// Heap size of this block in bytes (metadata + packed words).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.len() * 8
    }
}

/// Number of bits needed to represent `v` (0 needs 0 bits).
#[inline]
pub fn bits_needed(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Pack `width` low bits of `v` at bit offset `bit` into `words`.
#[inline]
fn pack(words: &mut [u64], bit: usize, width: u8, v: u64) {
    let w = bit / 64;
    let off = bit % 64;
    words[w] |= v << off;
    let spill = off + width as usize;
    if spill > 64 {
        words[w + 1] |= v >> (64 - off);
    }
}

/// Extract `width` bits at bit offset `bit` from `words`.
#[inline]
fn extract(words: &[u64], bit: usize, width: u8) -> u64 {
    let w = bit / 64;
    let off = bit % 64;
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let lo = words[w] >> off;
    let spill = off + width as usize;
    let v = if spill > 64 {
        lo | (words[w + 1] << (64 - off))
    } else {
        lo
    };
    v & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_needed_boundaries() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(3), 2);
        assert_eq!(bits_needed(4), 3);
        assert_eq!(bits_needed(u64::MAX), 64);
        assert_eq!(bits_needed(u64::MAX >> 1), 63);
    }

    #[test]
    fn roundtrip_constant_block() {
        let vals = vec![42u64; 100];
        let b = Block::compress(&vals);
        assert_eq!(b.width(), 0);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.get(i), v);
        }
    }

    #[test]
    fn roundtrip_small_range() {
        let vals: Vec<u64> = (1000..1128).collect();
        let b = Block::compress(&vals);
        assert_eq!(b.len(), 128);
        assert_eq!(b.width(), 7); // deltas 0..=127
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.get(i), v);
        }
    }

    #[test]
    fn roundtrip_full_width() {
        let vals = vec![0u64, u64::MAX, 1, u64::MAX - 1, 12345];
        let b = Block::compress(&vals);
        assert_eq!(b.width(), 64);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.get(i), v);
        }
    }

    #[test]
    fn roundtrip_straddles_word_boundary() {
        // width 13 ensures values straddle 64-bit word boundaries.
        let vals: Vec<u64> = (0..128).map(|i| 5000 + (i * 61) % 8000).collect();
        let b = Block::compress(&vals);
        assert!(b.width() >= 13);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.get(i), v, "index {i}");
        }
    }

    #[test]
    fn decompress_matches() {
        let vals: Vec<u64> = (0..77).map(|i| i * i).collect();
        let b = Block::compress(&vals);
        let mut out = Vec::new();
        b.decompress_into(&mut out);
        assert_eq!(out, vals);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_block_panics() {
        let _ = Block::compress(&[]);
    }

    #[test]
    #[should_panic(expected = "block too large")]
    fn oversize_block_panics() {
        let vals = vec![0u64; BLOCK_LEN + 1];
        let _ = Block::compress(&vals);
    }
}
