//! Bit-packed delta blocks: the unit of compression in the column store.
//!
//! Each [`Block`] stores up to [`BLOCK_LEN`] (=128) `u64` values as deltas to
//! the block minimum, packed at the smallest bit width that fits the largest
//! delta. Random access is constant-time: the value at offset `i` is
//! `min + extract_bits(packed, i * width, width)`.
//!
//! Blocks also answer range predicates *without decoding*: the stored
//! `[min, max]` classifies a predicate as rejecting or accepting the whole
//! block ([`Block::classify`]), and partially overlapping predicates are
//! translated into the block's delta domain and evaluated against the packed
//! words directly ([`Block::match_mask`]) — word-parallel (SWAR) when the
//! bit width subdivides a 64-bit word, scalar otherwise.

use serde::{Deserialize, Serialize};

/// Number of values per compression block (fixed at 128, per the paper §7.1).
pub const BLOCK_LEN: usize = 128;

/// A single bit-packed block of up to [`BLOCK_LEN`] values.
///
/// Values are stored as `value - min` at `width` bits each, packed
/// little-endian into `words`. `width == 0` means all values equal `min` and
/// no words are stored. `max` is kept alongside `min` so range predicates
/// can skip or accept the whole block from metadata alone.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Block {
    min: u64,
    max: u64,
    width: u8,
    len: u16,
    words: Box<[u64]>,
}

/// Disposition of an inclusive value-range predicate `[lo, hi]` against one
/// block, decided from `[min, max]` metadata ([`Block::classify`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockMatch {
    /// `[lo, hi]` misses `[min, max]` entirely: no value can match, the
    /// block's packed words need not be touched.
    Skip,
    /// `[lo, hi]` covers `[min, max]` wholly: every value matches, the
    /// block's packed words need not be touched.
    Accept,
    /// The ranges partially overlap: the predicate, clamped and translated
    /// into the block's delta domain (`bound - min`), must be checked
    /// against the packed deltas via [`Block::match_mask`].
    Probe {
        /// `max(lo, min) - min`: the predicate's lower bound as a delta.
        dlo: u64,
        /// `min(hi, max) - min`: the predicate's upper bound as a delta.
        dhi: u64,
    },
}

/// A per-offset match bitmap for one block: bit `i` of `mask[i / 64]` is set
/// when the value at block offset `i` matched. Two words cover
/// [`BLOCK_LEN`] = 128 offsets.
pub type BlockMask = [u64; 2];

impl Block {
    /// Compress a slice of at most [`BLOCK_LEN`] values.
    ///
    /// # Panics
    /// Panics if `values` is empty or longer than [`BLOCK_LEN`].
    pub fn compress(values: &[u64]) -> Self {
        assert!(!values.is_empty(), "cannot compress an empty block");
        assert!(
            values.len() <= BLOCK_LEN,
            "block too large: {} > {}",
            values.len(),
            BLOCK_LEN
        );
        let min = *values.iter().min().expect("non-empty");
        let max = *values.iter().max().expect("non-empty");
        let range = max - min;
        let width = bits_needed(range);
        let total_bits = width as usize * values.len();
        let n_words = total_bits.div_ceil(64);
        let mut words = vec![0u64; n_words].into_boxed_slice();
        if width > 0 {
            for (i, &v) in values.iter().enumerate() {
                pack(&mut words, i * width as usize, width, v - min);
            }
        }
        Block {
            min,
            max,
            width,
            len: values.len() as u16,
            words,
        }
    }

    /// Number of values stored in this block.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True when the block holds no values (never constructed by `compress`).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Constant-time access to the value at offset `i` within the block.
    ///
    /// # Panics
    /// Panics in debug builds if `i >= self.len()`.
    #[inline]
    pub fn get(&self, i: usize) -> u64 {
        debug_assert!(i < self.len as usize);
        if self.width == 0 {
            return self.min;
        }
        self.min + extract(&self.words, i * self.width as usize, self.width)
    }

    /// Minimum value in the block (the delta base).
    #[inline]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Maximum value in the block.
    #[inline]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Bit width used for deltas in this block.
    #[inline]
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The packed delta words (empty when `width == 0`). Exposed for the
    /// tiered-storage segment codec, which serializes blocks verbatim.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reassemble a block from its serialized parts (the inverse of reading
    /// [`Block::min`]/[`Block::max`]/[`Block::width`]/[`Block::len`]/
    /// [`Block::words`]). The caller — the segment codec — must pass parts
    /// produced by [`Block::compress`]; geometry is re-checked so a corrupt
    /// segment can never build a block whose accessors would panic later.
    pub(crate) fn from_raw_parts(
        min: u64,
        max: u64,
        width: u8,
        len: u16,
        words: Box<[u64]>,
    ) -> Result<Self, String> {
        if len == 0 || len as usize > BLOCK_LEN {
            return Err(format!("block length {len} out of range"));
        }
        if min > max || width != bits_needed(max - min) {
            return Err(format!(
                "inconsistent block header: min {min} max {max} width {width}"
            ));
        }
        let want_words = (width as usize * len as usize).div_ceil(64);
        if words.len() != want_words {
            return Err(format!(
                "packed payload holds {} words, header implies {want_words}",
                words.len()
            ));
        }
        Ok(Block {
            min,
            max,
            width,
            len,
            words,
        })
    }

    /// Classify the inclusive predicate `[lo, hi]` against this block's
    /// `[min, max]` without touching the packed words.
    ///
    /// For [`BlockMatch::Probe`] the returned bounds are already clamped
    /// into the delta domain: a `lo` below the block minimum saturates to
    /// delta 0, a `hi` above the block maximum clamps to `max - min`, so
    /// the bounds always fit the block's bit width.
    #[inline]
    pub fn classify(&self, lo: u64, hi: u64) -> BlockMatch {
        debug_assert!(lo <= hi);
        if hi < self.min || lo > self.max {
            return BlockMatch::Skip;
        }
        if lo <= self.min && self.max <= hi {
            return BlockMatch::Accept;
        }
        // Partial overlap. `hi >= min` and `lo <= max` both hold here, and a
        // width-0 block (min == max) can never reach this arm: overlapping
        // a single point means containing it, which is `Accept`.
        BlockMatch::Probe {
            dlo: lo.saturating_sub(self.min),
            dhi: (hi - self.min).min(self.max - self.min),
        }
    }

    /// Build the match bitmap for block offsets `[start, end)` against the
    /// delta-domain predicate `[dlo, dhi]` (from [`BlockMatch::Probe`]),
    /// comparing the packed words directly — no per-value decode.
    ///
    /// Widths that subdivide a 64-bit word run word-parallel (SWAR); other
    /// widths fall back to a scalar pass over the packed deltas. Offsets
    /// outside `[start, end)` are always clear; `start >= end` yields an
    /// empty mask.
    ///
    /// # Panics
    /// Panics in debug builds if `end > self.len()`.
    pub fn match_mask(&self, dlo: u64, dhi: u64, start: usize, end: usize) -> BlockMask {
        debug_assert!(end <= self.len());
        let mut mask: BlockMask = [0; 2];
        if start >= end {
            return mask;
        }
        let w = self.width as usize;
        if w == 0 {
            // All deltas are zero: everything matches iff the range admits 0.
            if dlo == 0 {
                set_mask_range(&mut mask, start, end);
            }
            return mask;
        }
        if 64 % w == 0 {
            self.match_mask_swar(dlo, dhi, start, end, &mut mask);
        } else {
            for i in start..end {
                let d = extract(&self.words, i * w, self.width);
                if dlo <= d && d <= dhi {
                    mask[i / 64] |= 1 << (i % 64);
                }
            }
        }
        mask
    }

    /// SWAR kernel behind [`Block::match_mask`]: `64 / width` deltas per
    /// packed word are range-checked at once; only matching lanes are
    /// visited when transcribing into the offset bitmap.
    fn match_mask_swar(&self, dlo: u64, dhi: u64, start: usize, end: usize, mask: &mut BlockMask) {
        let w = self.width as usize;
        let lanes = 64 / w;
        // Low bit of every lane; multiplying by it splats a lane value.
        let ones = if w == 64 {
            1
        } else {
            u64::MAX / ((1u64 << w) - 1)
        };
        let high = ones << (w - 1);
        let lo_splat = dlo.wrapping_mul(ones);
        let hi_splat = dhi.wrapping_mul(ones);
        for word in (start / lanes)..=((end - 1) / lanes) {
            let x = self.words[word];
            // Lane matches ⇔ !(x < dlo) && !(dhi < x); padding lanes past
            // `len` hold zero and are excluded by the `[start, end)` guard.
            let mut hit = !swar_lt(x, lo_splat, high) & !swar_lt(hi_splat, x, high) & high;
            while hit != 0 {
                let lane = hit.trailing_zeros() as usize / w;
                hit &= hit - 1;
                let i = word * lanes + lane;
                if i >= start && i < end {
                    mask[i / 64] |= 1 << (i % 64);
                }
            }
        }
    }

    /// Decompress the whole block, appending to `out`.
    pub fn decompress_into(&self, out: &mut Vec<u64>) {
        out.reserve(self.len());
        for i in 0..self.len() {
            out.push(self.get(i));
        }
    }

    /// Heap size of this block in bytes (metadata + packed words).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.words.len() * 8
    }
}

/// Number of bits needed to represent `v` (0 needs 0 bits).
#[inline]
pub fn bits_needed(v: u64) -> u8 {
    (64 - v.leading_zeros()) as u8
}

/// Set bits `[start, end)` of a two-word offset bitmap.
#[inline]
pub fn set_mask_range(mask: &mut BlockMask, start: usize, end: usize) {
    debug_assert!(start <= end && end <= BLOCK_LEN);
    for (k, m) in mask.iter_mut().enumerate() {
        let (ws, we) = (k * 64, k * 64 + 64);
        let s = start.clamp(ws, we) - ws;
        let e = end.clamp(ws, we) - ws;
        if s < e {
            // `e - s` is at most 64; build the run without overflowing.
            let run = (u64::MAX >> (64 - (e - s))) << s;
            *m |= run;
        }
    }
}

/// Per-lane unsigned `a < b` over `64 / width` packed lanes, reported in
/// each lane's high bit. `high` holds the high bit of every lane.
///
/// Classic carry-free SWAR comparison: `d = (a | high) - (b & !high)` keeps
/// every lane's low-part subtraction from borrowing into its neighbour
/// (each lane computes `2^(w-1) + a_low - b_low`, always in `[1, 2^w)`), so
/// the high bit of `d` is the *no-borrow* flag of `a_low - b_low`. A lane
/// then satisfies `a < b` when its high bits say `a_hi < b_hi`, or they are
/// equal and the low part borrowed.
#[inline]
fn swar_lt(a: u64, b: u64, high: u64) -> u64 {
    let d = (a | high).wrapping_sub(b & !high);
    ((!a & b) | (!(a ^ b) & !d)) & high
}

/// Pack `width` low bits of `v` at bit offset `bit` into `words`.
#[inline]
fn pack(words: &mut [u64], bit: usize, width: u8, v: u64) {
    let w = bit / 64;
    let off = bit % 64;
    words[w] |= v << off;
    let spill = off + width as usize;
    if spill > 64 {
        words[w + 1] |= v >> (64 - off);
    }
}

/// Extract `width` bits at bit offset `bit` from `words`.
#[inline]
fn extract(words: &[u64], bit: usize, width: u8) -> u64 {
    let w = bit / 64;
    let off = bit % 64;
    let mask = if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    };
    let lo = words[w] >> off;
    let spill = off + width as usize;
    let v = if spill > 64 {
        lo | (words[w + 1] << (64 - off))
    } else {
        lo
    };
    v & mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_needed_boundaries() {
        assert_eq!(bits_needed(0), 0);
        assert_eq!(bits_needed(1), 1);
        assert_eq!(bits_needed(2), 2);
        assert_eq!(bits_needed(3), 2);
        assert_eq!(bits_needed(4), 3);
        assert_eq!(bits_needed(u64::MAX), 64);
        assert_eq!(bits_needed(u64::MAX >> 1), 63);
    }

    #[test]
    fn roundtrip_constant_block() {
        let vals = vec![42u64; 100];
        let b = Block::compress(&vals);
        assert_eq!(b.width(), 0);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.get(i), v);
        }
    }

    #[test]
    fn roundtrip_small_range() {
        let vals: Vec<u64> = (1000..1128).collect();
        let b = Block::compress(&vals);
        assert_eq!(b.len(), 128);
        assert_eq!(b.width(), 7); // deltas 0..=127
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.get(i), v);
        }
    }

    #[test]
    fn roundtrip_full_width() {
        let vals = vec![0u64, u64::MAX, 1, u64::MAX - 1, 12345];
        let b = Block::compress(&vals);
        assert_eq!(b.width(), 64);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.get(i), v);
        }
    }

    #[test]
    fn roundtrip_straddles_word_boundary() {
        // width 13 ensures values straddle 64-bit word boundaries.
        let vals: Vec<u64> = (0..128).map(|i| 5000 + (i * 61) % 8000).collect();
        let b = Block::compress(&vals);
        assert!(b.width() >= 13);
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(b.get(i), v, "index {i}");
        }
    }

    #[test]
    fn decompress_matches() {
        let vals: Vec<u64> = (0..77).map(|i| i * i).collect();
        let b = Block::compress(&vals);
        let mut out = Vec::new();
        b.decompress_into(&mut out);
        assert_eq!(out, vals);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_block_panics() {
        let _ = Block::compress(&[]);
    }

    #[test]
    #[should_panic(expected = "block too large")]
    fn oversize_block_panics() {
        let vals = vec![0u64; BLOCK_LEN + 1];
        let _ = Block::compress(&vals);
    }

    /// Reference mask: decode every value and compare.
    fn naive_mask(b: &Block, lo: u64, hi: u64, start: usize, end: usize) -> BlockMask {
        let mut mask = [0u64; 2];
        for i in start..end {
            let v = b.get(i);
            if lo <= v && v <= hi {
                mask[i / 64] |= 1 << (i % 64);
            }
        }
        mask
    }

    /// Full classify + probe pipeline against the decode-first reference.
    fn assert_packed_matches(vals: &[u64], lo: u64, hi: u64, start: usize, end: usize) {
        let b = Block::compress(vals);
        let want = naive_mask(&b, lo, hi, start, end);
        let got = match b.classify(lo, hi) {
            BlockMatch::Skip => [0u64; 2],
            BlockMatch::Accept => {
                let mut m = [0u64; 2];
                set_mask_range(&mut m, start.min(end), end);
                m
            }
            BlockMatch::Probe { dlo, dhi } => b.match_mask(dlo, dhi, start, end),
        };
        assert_eq!(
            got,
            want,
            "vals[0..{}] width {} lo {lo} hi {hi} range [{start},{end})",
            vals.len(),
            b.width()
        );
    }

    #[test]
    fn classify_min_max_boundaries() {
        let b = Block::compress(&[10, 20, 30]);
        assert_eq!((b.min(), b.max()), (10, 30));
        // Predicate exactly on min/max: whole-block accept.
        assert_eq!(b.classify(10, 30), BlockMatch::Accept);
        assert_eq!(b.classify(0, u64::MAX), BlockMatch::Accept);
        // One past either endpoint: skip.
        assert_eq!(b.classify(0, 9), BlockMatch::Skip);
        assert_eq!(b.classify(31, 40), BlockMatch::Skip);
        // Predicate touching a single endpoint value: probe.
        assert_eq!(b.classify(30, 40), BlockMatch::Probe { dlo: 20, dhi: 20 });
        assert_eq!(b.classify(0, 10), BlockMatch::Probe { dlo: 0, dhi: 0 });
    }

    #[test]
    fn classify_clamps_bounds_into_delta_domain() {
        let b = Block::compress(&[100, 150, 200]);
        // Bound below min saturates to delta 0 (not a huge wrapped delta).
        assert_eq!(b.classify(3, 150), BlockMatch::Probe { dlo: 0, dhi: 50 });
        // Bound above max clamps to max - min, keeping dhi within width bits.
        assert_eq!(
            b.classify(150, u64::MAX),
            BlockMatch::Probe { dlo: 50, dhi: 100 }
        );
    }

    #[test]
    fn classify_width_zero_never_probes() {
        let b = Block::compress(&[7; 50]);
        assert_eq!(b.width(), 0);
        assert_eq!(b.classify(0, 6), BlockMatch::Skip);
        assert_eq!(b.classify(8, 9), BlockMatch::Skip);
        assert_eq!(b.classify(7, 7), BlockMatch::Accept);
        assert_eq!(b.classify(0, u64::MAX), BlockMatch::Accept);
    }

    #[test]
    fn match_mask_empty_range_is_empty() {
        let vals: Vec<u64> = (0..100).collect();
        let b = Block::compress(&vals);
        assert_eq!(b.match_mask(0, 99, 40, 40), [0, 0]);
        assert_eq!(b.match_mask(0, 99, 0, 0), [0, 0]);
        // Width-0 blocks too (the scalar-free early return).
        let c = Block::compress(&[5; 64]);
        assert_eq!(c.match_mask(0, 0, 10, 10), [0, 0]);
    }

    #[test]
    fn match_mask_respects_subrange() {
        let vals: Vec<u64> = (0..128).collect();
        let b = Block::compress(&vals); // width 7: scalar path
        let m = b.match_mask(0, 127, 3, 70);
        for i in 0..128 {
            let set = m[i / 64] >> (i % 64) & 1 == 1;
            assert_eq!(set, (3..70).contains(&i), "offset {i}");
        }
    }

    #[test]
    fn swar_widths_match_decode_first() {
        // Widths 1, 2, 4, 8, 16, 32 — every SWAR lane layout.
        for shift in [1u32, 2, 4, 8, 16, 32] {
            let top = if shift == 32 {
                u64::MAX >> 32
            } else {
                (1 << shift) - 1
            };
            let vals: Vec<u64> = (0..128u64).map(|i| (i * 2654435761) % (top + 1)).collect();
            let b = Block::compress(&vals);
            assert!(64 % b.width() as usize == 0, "width {} not SWAR", b.width());
            for (lo, hi) in [(0, top / 2), (top / 3, top), (top / 2, top / 2), (0, top)] {
                assert_packed_matches(&vals, lo, hi, 0, vals.len());
                assert_packed_matches(&vals, lo, hi, 17, 97);
            }
        }
    }

    #[test]
    fn width_64_blocks_match_decode_first() {
        let vals = vec![0u64, u64::MAX, 1, u64::MAX - 1, 1 << 63, (1 << 63) - 1, 42];
        for (lo, hi) in [
            (0, u64::MAX),
            (1, u64::MAX - 1),
            (1 << 63, u64::MAX),
            (0, (1 << 63) - 1),
            (42, 42),
        ] {
            assert_packed_matches(&vals, lo, hi, 0, vals.len());
        }
        let b = Block::compress(&vals);
        assert_eq!(b.width(), 64);
        assert_eq!((b.min(), b.max()), (0, u64::MAX));
    }

    #[test]
    fn scalar_widths_match_decode_first() {
        // Widths that do not subdivide a word (3, 5, 7, 13) take the scalar
        // fallback; straddled word boundaries included.
        for top in [7u64, 31, 127, 8000] {
            let vals: Vec<u64> = (0..128u64).map(|i| 1000 + (i * 61) % top).collect();
            for (lo, hi) in [
                (1000, 1000 + top / 2),
                (1000 + top / 4, u64::MAX),
                (0, 1010),
            ] {
                assert_packed_matches(&vals, lo, hi, 0, vals.len());
                assert_packed_matches(&vals, lo, hi, 5, 123);
            }
        }
    }

    #[test]
    fn partial_last_block_masks() {
        // A 77-value block: offsets past len never set bits even when the
        // zero-padding lanes would match delta 0.
        let vals: Vec<u64> = (0..77u64).map(|i| 50 + i % 3).collect();
        let b = Block::compress(&vals);
        let BlockMatch::Probe { dlo, dhi } = b.classify(50, 50) else {
            panic!("expected probe");
        };
        assert_eq!((dlo, dhi), (0, 0));
        let m = b.match_mask(dlo, dhi, 0, b.len());
        for i in 0..BLOCK_LEN {
            let set = m[i / 64] >> (i % 64) & 1 == 1;
            assert_eq!(set, i < 77 && i % 3 == 0, "offset {i}");
        }
    }

    #[test]
    fn set_mask_range_spans_words() {
        let mut m = [0u64; 2];
        set_mask_range(&mut m, 60, 70);
        for i in 0..128 {
            let set = m[i / 64] >> (i % 64) & 1 == 1;
            assert_eq!(set, (60..70).contains(&i), "offset {i}");
        }
        let mut full = [0u64; 2];
        set_mask_range(&mut full, 0, 128);
        assert_eq!(full, [u64::MAX, u64::MAX]);
    }
}
