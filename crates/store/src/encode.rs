//! Ingestion encoders (§7.1): everything becomes a 64-bit integer.
//!
//! * Strings → dictionary codes ([`Dictionary`]).
//! * Decimals → scaled integers: values are multiplied by the smallest power
//!   of ten that makes every value integral ([`scale_decimals`]).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An order-preserving string dictionary: codes are assigned in sorted order
/// so range predicates on the encoded column match lexicographic ranges.
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Dictionary {
    by_string: BTreeMap<String, u64>,
    by_code: Vec<String>,
}

impl Dictionary {
    /// Build a dictionary over a set of string values; duplicates collapse.
    pub fn build<S: AsRef<str>>(values: impl IntoIterator<Item = S>) -> Self {
        let mut set: Vec<String> = values.into_iter().map(|s| s.as_ref().to_owned()).collect();
        set.sort_unstable();
        set.dedup();
        let by_string = set
            .iter()
            .enumerate()
            .map(|(i, s)| (s.clone(), i as u64))
            .collect();
        Dictionary {
            by_string,
            by_code: set,
        }
    }

    /// Code for a string; `None` when unseen at build time.
    pub fn encode(&self, s: &str) -> Option<u64> {
        self.by_string.get(s).copied()
    }

    /// Encode a full column.
    ///
    /// # Panics
    /// Panics on values absent from the dictionary.
    pub fn encode_column<S: AsRef<str>>(&self, values: &[S]) -> Vec<u64> {
        values
            .iter()
            .map(|s| {
                self.encode(s.as_ref())
                    .unwrap_or_else(|| panic!("unseen dictionary value: {}", s.as_ref()))
            })
            .collect()
    }

    /// String for a code.
    pub fn decode(&self, code: u64) -> Option<&str> {
        self.by_code.get(code as usize).map(String::as_str)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.by_code.len()
    }

    /// True when the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.by_code.is_empty()
    }
}

/// Scale `values` by the smallest power of ten (up to `max_places`) that
/// makes every value integral; returns `(scaled, scale_factor)`.
///
/// Floating-point attributes in the paper "are typically limited to a fixed
/// number of decimal points (e.g., 2 for price values)".
pub fn scale_decimals(values: &[f64], max_places: u32) -> (Vec<u64>, u64) {
    let mut factor = 1u64;
    'outer: for p in 0..=max_places {
        factor = 10u64.pow(p);
        for &v in values {
            let scaled = v * factor as f64;
            if (scaled - scaled.round()).abs() > 1e-6 * factor as f64 {
                continue 'outer;
            }
        }
        break;
    }
    let scaled = values
        .iter()
        .map(|&v| (v * factor as f64).round().max(0.0) as u64)
        .collect();
    (scaled, factor)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dictionary_order_preserving() {
        let d = Dictionary::build(["cherry", "apple", "banana", "apple"]);
        assert_eq!(d.len(), 3);
        assert_eq!(d.encode("apple"), Some(0));
        assert_eq!(d.encode("banana"), Some(1));
        assert_eq!(d.encode("cherry"), Some(2));
        assert_eq!(d.encode("durian"), None);
        assert_eq!(d.decode(1), Some("banana"));
    }

    #[test]
    fn dictionary_column_roundtrip() {
        let d = Dictionary::build(["x", "y", "z"]);
        let encoded = d.encode_column(&["z", "x", "y", "z"]);
        assert_eq!(encoded, vec![2, 0, 1, 2]);
    }

    #[test]
    fn decimal_scaling_two_places() {
        let (scaled, f) = scale_decimals(&[1.25, 3.10, 0.05], 6);
        assert_eq!(f, 100);
        assert_eq!(scaled, vec![125, 310, 5]);
    }

    #[test]
    fn decimal_scaling_integers_need_no_scale() {
        let (scaled, f) = scale_decimals(&[3.0, 7.0], 6);
        assert_eq!(f, 1);
        assert_eq!(scaled, vec![3, 7]);
    }

    #[test]
    fn decimal_scaling_caps_at_max_places() {
        // 1/3 never becomes integral; we settle at the max.
        let (_, f) = scale_decimals(&[1.0 / 3.0], 4);
        assert_eq!(f, 10_000);
    }
}
