//! Sampling primitives for the dataset generators: Zipf, log-normal,
//! Gaussian and mixtures — implemented inline so the workspace needs no
//! distribution crate.

use rand::rngs::StdRng;
use rand::Rng;

/// Standard normal via Box–Muller.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal with the given mean and standard deviation.
pub fn normal(rng: &mut StdRng, mean: f64, std: f64) -> f64 {
    mean + std * gaussian(rng)
}

/// Log-normal: `exp(N(mu, sigma))`.
pub fn log_normal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// A Zipf sampler over `{0, …, n-1}` with exponent `s` (frequency of rank k
/// ∝ 1/(k+1)^s), using inverse-CDF lookup on a precomputed table.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Build the sampler.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s < 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draw a rank in `{0, …, n-1}`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Domain size.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the domain is empty (unconstructible).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }
}

/// A mixture of 2-D Gaussians (cluster centers for OSM-like geo data).
#[derive(Debug, Clone)]
pub struct GaussianMixture2D {
    /// `(cx, cy, std, weight)` per component; weights need not normalize.
    components: Vec<(f64, f64, f64, f64)>,
    total_weight: f64,
}

impl GaussianMixture2D {
    /// Build from components `(center_x, center_y, std, weight)`.
    pub fn new(components: Vec<(f64, f64, f64, f64)>) -> Self {
        assert!(!components.is_empty());
        let total_weight = components.iter().map(|c| c.3).sum();
        GaussianMixture2D {
            components,
            total_weight,
        }
    }

    /// Draw an `(x, y)` pair.
    pub fn sample(&self, rng: &mut StdRng) -> (f64, f64) {
        let mut pick = rng.gen_range(0.0..self.total_weight);
        for &(cx, cy, std, w) in &self.components {
            if pick < w {
                return (normal(rng, cx, std), normal(rng, cy, std));
            }
            pick -= w;
        }
        let &(cx, cy, std, _) = self.components.last().expect("non-empty");
        (normal(rng, cx, std), normal(rng, cy, std))
    }
}

/// Clamp a float into `[lo, hi]` and round to u64.
pub fn to_u64(v: f64, lo: f64, hi: f64) -> u64 {
    v.clamp(lo, hi).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(12345)
    }

    #[test]
    fn gaussian_moments() {
        let mut r = rng();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let z = Zipf::new(1_000, 1.2);
        let mut r = rng();
        let mut counts = vec![0usize; 1_000];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[500].max(1) / 2);
        // Rank 0 should dominate: >5% of mass at s=1.2 over 1000 items.
        assert!(counts[0] > 1_000, "head count {}", counts[0]);
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut r = rng();
        let mut counts = vec![0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for &c in &counts {
            assert!((1_000..3_500).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn log_normal_is_positive_and_skewed() {
        let mut r = rng();
        let samples: Vec<f64> = (0..10_000).map(|_| log_normal(&mut r, 3.0, 1.0)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = sorted[sorted.len() / 2];
        assert!(mean > median, "log-normal should be right-skewed");
    }

    #[test]
    fn mixture_concentrates_at_centers() {
        let m = GaussianMixture2D::new(vec![(0.0, 0.0, 1.0, 1.0), (100.0, 100.0, 1.0, 1.0)]);
        let mut r = rng();
        let mut near0 = 0;
        let mut near100 = 0;
        for _ in 0..1_000 {
            let (x, y) = m.sample(&mut r);
            if x.abs() < 10.0 && y.abs() < 10.0 {
                near0 += 1;
            }
            if (x - 100.0).abs() < 10.0 && (y - 100.0).abs() < 10.0 {
                near100 += 1;
            }
        }
        assert!(near0 > 300 && near100 > 300, "{near0} / {near100}");
    }

    #[test]
    fn to_u64_clamps() {
        assert_eq!(to_u64(-5.0, 0.0, 10.0), 0);
        assert_eq!(to_u64(15.0, 0.0, 10.0), 10);
        assert_eq!(to_u64(5.4, 0.0, 10.0), 5);
    }
}
