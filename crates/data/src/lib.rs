//! # flood-data
//!
//! Synthetic dataset and query-workload generators for the Flood evaluation
//! (§7.3). Each generator reproduces the *statistical shape* the paper's
//! datasets expose to an index — marginal skew, dimension count, correlation
//! structure, query templates and selectivities — per the substitution table
//! in DESIGN.md (the paper's sales/OSM/perfmon data are proprietary or
//! multi-GB downloads).
//!
//! All generators are deterministic given a seed, so experiments are
//! reproducible run-to-run.

pub mod datasets;
pub mod dist;
pub mod workloads;

pub use datasets::{Dataset, DatasetKind};
pub use workloads::{
    DimFilter, DriftConfig, DriftMode, DriftPhase, DriftingWorkload, QueryTemplate, Workload,
    WorkloadKind,
};
