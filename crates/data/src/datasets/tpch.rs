//! TPC-H `lineitem` generator (§7.3): the fact table's filterable columns at
//! the distributions the TPC-H specification prescribes for dbgen.
//!
//! Columns follow the spec: `shipdate = orderdate + U[1,121]` over a 7-year
//! order window, `receiptdate = shipdate + U[1,30]`, `quantity ∈ U[1,50]`,
//! `discount ∈ U[0,10]` (percent), uniform order/supplier keys, and
//! `extendedprice` derived from quantity (the SUM/COUNT aggregation column).

use crate::workloads::{DimFilter, QueryTemplate};
use flood_store::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Ship date, days since 1992-01-01 (domain ≈ 0..2557).
pub const COL_SHIP_DATE: usize = 0;
/// Receipt date, `shipdate + U[1,30]`.
pub const COL_RECEIPT_DATE: usize = 1;
/// Quantity, `U[1,50]`.
pub const COL_QUANTITY: usize = 2;
/// Discount in percent, `U[0,10]`.
pub const COL_DISCOUNT: usize = 3;
/// Order key (uniform, sparse like dbgen's).
pub const COL_ORDER_KEY: usize = 4;
/// Supplier key (uniform).
pub const COL_SUPP_KEY: usize = 5;
/// Extended price in cents (quantity × part price).
pub const COL_PRICE: usize = 6;

/// Generate `n` rows.
pub fn generate(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x79C4);
    let mut cols: Vec<Vec<u64>> = (0..7).map(|_| Vec::with_capacity(n)).collect();
    // Scale key domains with n the way dbgen scales with SF.
    let orders = (n as u64 / 4).max(100);
    let suppliers = (n as u64 / 300).max(10);
    for _ in 0..n {
        // Order date over ~7 years minus the max ship lag (spec 4.2.3).
        let order_date = rng.gen_range(0..2_405u64);
        let ship = order_date + rng.gen_range(1..=121u64);
        let receipt = ship + rng.gen_range(1..=30u64);
        let quantity = rng.gen_range(1..=50u64);
        let discount = rng.gen_range(0..=10u64);
        // Part price ~ U[90k, 110k] cents; extended = qty × price.
        let price = quantity * rng.gen_range(90_000..110_000u64);
        cols[COL_SHIP_DATE].push(ship);
        cols[COL_RECEIPT_DATE].push(receipt);
        cols[COL_QUANTITY].push(quantity);
        cols[COL_DISCOUNT].push(discount);
        cols[COL_ORDER_KEY].push(rng.gen_range(0..orders) * 4 + 1);
        cols[COL_SUPP_KEY].push(rng.gen_range(0..suppliers));
        cols[COL_PRICE].push(price);
    }
    Table::from_named_columns(
        cols,
        [
            "shipdate",
            "receiptdate",
            "quantity",
            "discount",
            "orderkey",
            "suppkey",
            "extendedprice",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    )
}

/// Query templates with "filters commonly found in the TPC-H query
/// workload" (§7.3): shipping-window revenue (Q6-style), receipt lag,
/// per-supplier activity, order lookups.
pub fn templates() -> Vec<QueryTemplate> {
    vec![
        QueryTemplate::new(
            "q6_revenue_window",
            vec![
                DimFilter::range(COL_SHIP_DATE, 0.08),
                DimFilter::range(COL_DISCOUNT, 0.25),
                DimFilter::range(COL_QUANTITY, 0.45),
            ],
        ),
        QueryTemplate::new(
            "ship_receipt_lag",
            vec![
                DimFilter::range(COL_SHIP_DATE, 0.05),
                DimFilter::range(COL_RECEIPT_DATE, 0.05),
            ],
        ),
        QueryTemplate::new(
            "supplier_period",
            vec![
                DimFilter::point(COL_SUPP_KEY),
                DimFilter::range(COL_SHIP_DATE, 0.3),
            ],
        ),
        QueryTemplate::new("order_range", vec![DimFilter::range(COL_ORDER_KEY, 0.001)]),
        QueryTemplate::new(
            "discounted_bulk",
            vec![
                DimFilter::range(COL_DISCOUNT, 0.15),
                DimFilter::range(COL_QUANTITY, 0.1),
                DimFilter::range(COL_SHIP_DATE, 0.15),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn receipt_follows_ship() {
        let t = generate(5_000, 11);
        for r in 0..t.len() {
            let ship = t.value(r, COL_SHIP_DATE);
            let receipt = t.value(r, COL_RECEIPT_DATE);
            assert!(receipt > ship && receipt <= ship + 30);
        }
    }

    #[test]
    fn spec_domains() {
        let t = generate(5_000, 11);
        for r in 0..t.len() {
            assert!((1..=50).contains(&t.value(r, COL_QUANTITY)));
            assert!(t.value(r, COL_DISCOUNT) <= 10);
            let price = t.value(r, COL_PRICE);
            assert!((90_000..=50 * 110_000).contains(&price));
        }
    }

    #[test]
    fn quantity_roughly_uniform() {
        let t = generate(50_000, 11);
        let mut counts = [0usize; 51];
        for r in 0..t.len() {
            counts[t.value(r, COL_QUANTITY) as usize] += 1;
        }
        let expect = 50_000 / 50;
        for (q, &c) in counts.iter().enumerate().skip(1) {
            assert!((expect / 2..expect * 2).contains(&c), "quantity {q}: {c}");
        }
    }
}
