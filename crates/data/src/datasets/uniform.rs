//! Uniform d-dimensional synthetic data (§7.5's dimensionality sweep):
//! "synthetic d-dimensional datasets (d ≤ 18) with 100 million records whose
//! values in each dimension are distributed uniformly at random."

use flood_store::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain of every dimension (32-bit values keep Z-order resolution fair at
/// high d).
pub const DOMAIN: u64 = 1 << 32;

/// Generate `n` rows of `d` uniform dimensions.
pub fn generate(n: usize, d: usize, seed: u64) -> Table {
    assert!(d >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0711F);
    let mut cols: Vec<Vec<u64>> = vec![Vec::with_capacity(n); d];
    for _ in 0..n {
        for col in cols.iter_mut() {
            col.push(rng.gen_range(0..DOMAIN));
        }
    }
    Table::from_columns(cols)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dimensions_are_uniform() {
        let t = generate(20_000, 3, 42);
        for d in 0..3 {
            let below_half = (0..t.len()).filter(|&r| t.value(r, d) < DOMAIN / 2).count();
            let frac = below_half as f64 / t.len() as f64;
            assert!((0.47..0.53).contains(&frac), "dim {d}: {frac}");
        }
    }

    #[test]
    fn supports_high_dimensions() {
        let t = generate(100, 18, 42);
        assert_eq!(t.dims(), 18);
        assert_eq!(t.len(), 100);
    }
}
