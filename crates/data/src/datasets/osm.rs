//! OpenStreetMap-style generator (§7.3).
//!
//! The paper uses all 105M elements of the US-Northeast extract: an id, a
//! timestamp, GPS coordinates on 90% of records, and categorical type /
//! landmark attributes. Geographic mass concentrates around cities — the
//! skew that makes flattening worth 20–30× (§5.1) — so latitude/longitude
//! come from a Gaussian mixture over northeast-US metro areas; timestamps
//! grow with id (edits accumulate over the project's life) with heavy
//! recency skew.

use crate::dist::{GaussianMixture2D, Zipf};
use crate::workloads::{DimFilter, QueryTemplate};
use flood_store::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Element id (unique, increasing).
pub const COL_ID: usize = 0;
/// Edit timestamp (seconds; correlated with id, recency-skewed).
pub const COL_TIMESTAMP: usize = 1;
/// Latitude ×10⁶, offset to be non-negative; 0 = missing (10% of rows).
pub const COL_LAT: usize = 2;
/// Longitude ×10⁶, offset to be non-negative; 0 = missing.
pub const COL_LON: usize = 3;
/// Record type (node/way/relation/changeset, skewed).
pub const COL_TYPE: usize = 4;
/// Landmark category (Zipf over 100 categories).
pub const COL_CATEGORY: usize = 5;

/// Generate `n` rows.
pub fn generate(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x05E4);
    // Metro clusters: (lat, lon) in micro-degrees, shifted positive.
    // Rough NE-US: lat 39–45°N, lon 68–80°W.
    let metros = GaussianMixture2D::new(vec![
        (40_700_000.0, 74_000_000.0, 300_000.0, 8.0), // NYC
        (42_360_000.0, 71_060_000.0, 250_000.0, 4.0), // Boston
        (39_950_000.0, 75_160_000.0, 250_000.0, 4.0), // Philadelphia
        (43_050_000.0, 76_150_000.0, 400_000.0, 1.5), // upstate NY
        (41_760_000.0, 72_670_000.0, 200_000.0, 1.0), // Hartford
        (44_000_000.0, 73_000_000.0, 900_000.0, 1.5), // rural spread
    ]);
    let category_z = Zipf::new(100, 1.3);
    let mut cols: Vec<Vec<u64>> = (0..6).map(|_| Vec::with_capacity(n)).collect();
    for i in 0..n {
        let id = i as u64;
        // Timestamp: grows with id; recent edits denser (quadratic ramp),
        // plus jitter. Domain ≈ 15 years of seconds.
        let frac = (i as f64 / n.max(1) as f64).powf(0.5);
        let ts = (frac * 4.7e8) as u64 + rng.gen_range(0..2_000_000u64);
        let (lat, lon) = if rng.gen_bool(0.9) {
            let (la, lo) = metros.sample(&mut rng);
            (
                la.clamp(39_000_000.0, 45_000_000.0) as u64,
                lo.clamp(68_000_000.0, 80_000_000.0) as u64,
            )
        } else {
            (0, 0) // missing coordinates
        };
        // Types: nodes dominate real OSM dumps.
        let ty = match rng.gen_range(0..100u32) {
            0..=84 => 0u64, // node
            85..=97 => 1,   // way
            98 => 2,        // relation
            _ => 3,         // changeset
        };
        cols[COL_ID].push(id);
        cols[COL_TIMESTAMP].push(ts);
        cols[COL_LAT].push(lat);
        cols[COL_LON].push(lon);
        cols[COL_TYPE].push(ty);
        cols[COL_CATEGORY].push(category_z.sample(&mut rng) as u64);
    }
    Table::from_named_columns(
        cols,
        ["id", "timestamp", "lat", "lon", "type", "category"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    )
}

/// Analytics templates (§7.3): "How many nodes were added in a time
/// interval?", "How many buildings in a lat-lon rectangle?" — 1–3 dims,
/// ranges on timestamp/lat/lon, equalities on type/category.
pub fn templates() -> Vec<QueryTemplate> {
    vec![
        QueryTemplate::new(
            "nodes_in_time_interval",
            vec![
                DimFilter::point(COL_TYPE),
                DimFilter::range(COL_TIMESTAMP, 0.012),
            ],
        ),
        QueryTemplate::new(
            "latlon_rectangle",
            vec![
                DimFilter::range(COL_LAT, 0.04),
                DimFilter::range(COL_LON, 0.04),
            ],
        ),
        QueryTemplate::new(
            "buildings_in_rectangle",
            vec![
                DimFilter::point(COL_CATEGORY),
                DimFilter::range(COL_LAT, 0.15),
                DimFilter::range(COL_LON, 0.15),
            ],
        ),
        QueryTemplate::new("recent_edits", vec![DimFilter::range(COL_TIMESTAMP, 0.001)]),
        QueryTemplate::new(
            "category_activity",
            vec![
                DimFilter::point(COL_CATEGORY),
                DimFilter::range(COL_TIMESTAMP, 0.3),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ninety_percent_have_coordinates() {
        let t = generate(20_000, 5);
        let with_coords = (0..t.len()).filter(|&r| t.value(r, COL_LAT) != 0).count();
        let frac = with_coords as f64 / t.len() as f64;
        assert!((0.87..0.93).contains(&frac), "coord fraction {frac}");
    }

    #[test]
    fn geo_mass_clusters_near_nyc() {
        let t = generate(20_000, 5);
        let near_nyc = (0..t.len())
            .filter(|&r| {
                let lat = t.value(r, COL_LAT);
                let lon = t.value(r, COL_LON);
                lat != 0
                    && (40_000_000..41_400_000).contains(&lat)
                    && (73_300_000..74_700_000).contains(&lon)
            })
            .count();
        // NYC weight is 8/20 of coord mass; its ±0.7° box should hold a
        // large share.
        assert!(near_nyc > t.len() / 8, "near-NYC count {near_nyc}");
    }

    #[test]
    fn timestamps_monotone_in_trend() {
        let t = generate(10_000, 5);
        // Mean of the last decile of ids >> mean of the first decile.
        let n = t.len();
        let head: u64 =
            (0..n / 10).map(|r| t.value(r, COL_TIMESTAMP)).sum::<u64>() / (n / 10) as u64;
        let tail: u64 = (n - n / 10..n)
            .map(|r| t.value(r, COL_TIMESTAMP))
            .sum::<u64>()
            / (n / 10) as u64;
        assert!(tail > head * 2, "head {head}, tail {tail}");
    }

    #[test]
    fn nodes_dominate() {
        let t = generate(10_000, 5);
        let nodes = (0..t.len()).filter(|&r| t.value(r, COL_TYPE) == 0).count();
        assert!(nodes > t.len() * 3 / 4);
    }
}
