//! The four evaluation datasets (§7.3, Table 1), as synthetic generators,
//! plus the uniform d-dimensional dataset of the §7.5 dimensionality sweep.
//!
//! | paper dataset | records (paper) | dims | our generator |
//! |---------------|-----------------|------|----------------|
//! | sales         | 30 M            | 6    | [`sales`]      |
//! | tpc-h         | 300 M (SF 50)   | 7    | [`tpch`]       |
//! | osm           | 105 M           | 6    | [`osm`]        |
//! | perfmon       | 230 M           | 6    | [`perfmon`]    |
//!
//! Generators take an explicit row count: the paper's full sizes run on a
//! 64 GB testbed, harnesses here default to laptop-scale and accept
//! `--scale` to grow.

pub mod highdim;
pub mod osm;
pub mod perfmon;
pub mod sales;
pub mod tpch;
pub mod uniform;

use crate::workloads::QueryTemplate;
use flood_store::Table;
use serde::{Deserialize, Serialize};

/// Which evaluation dataset to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Commercial sales database (6 dims; mixed categorical/monetary/date).
    Sales,
    /// TPC-H `lineitem` (7 dims; §7.3's filter columns + revenue).
    TpcH,
    /// OpenStreetMap US-Northeast (6 dims; clustered geo + time).
    Osm,
    /// University performance-monitoring logs (6 dims; heavy skew).
    Perfmon,
}

impl DatasetKind {
    /// All four paper datasets, in Table 1 order.
    pub const ALL: [DatasetKind; 4] = [
        DatasetKind::Sales,
        DatasetKind::TpcH,
        DatasetKind::Osm,
        DatasetKind::Perfmon,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Sales => "sales",
            DatasetKind::TpcH => "tpc-h",
            DatasetKind::Osm => "osm",
            DatasetKind::Perfmon => "perfmon",
        }
    }

    /// Number of attributes (Table 1).
    pub fn dims(self) -> usize {
        match self {
            DatasetKind::TpcH => 7,
            _ => 6,
        }
    }

    /// Generate `n` rows with the given seed.
    pub fn generate(self, n: usize, seed: u64) -> Dataset {
        let table = match self {
            DatasetKind::Sales => sales::generate(n, seed),
            DatasetKind::TpcH => tpch::generate(n, seed),
            DatasetKind::Osm => osm::generate(n, seed),
            DatasetKind::Perfmon => perfmon::generate(n, seed),
        };
        Dataset { kind: self, table }
    }

    /// The aggregation column used by this dataset's workloads
    /// (e.g. TPC-H SUMs revenue).
    pub fn agg_dim(self) -> usize {
        match self {
            DatasetKind::Sales => sales::COL_PRICE,
            DatasetKind::TpcH => tpch::COL_PRICE,
            DatasetKind::Osm => osm::COL_ID,
            DatasetKind::Perfmon => perfmon::COL_CPU,
        }
    }

    /// The default OLAP query templates for this dataset (the Fig 7
    /// workloads).
    pub fn olap_templates(self) -> Vec<QueryTemplate> {
        match self {
            DatasetKind::Sales => sales::templates(),
            DatasetKind::TpcH => tpch::templates(),
            DatasetKind::Osm => osm::templates(),
            DatasetKind::Perfmon => perfmon::templates(),
        }
    }

    /// Primary-key-like dimensions for OLTP point-lookup workloads (Fig 9).
    pub fn key_dims(self) -> Vec<usize> {
        match self {
            DatasetKind::Sales => vec![sales::COL_STORE, sales::COL_PRODUCT],
            DatasetKind::TpcH => vec![tpch::COL_ORDER_KEY, tpch::COL_SUPP_KEY],
            DatasetKind::Osm => vec![osm::COL_ID, osm::COL_TIMESTAMP],
            DatasetKind::Perfmon => vec![perfmon::COL_MACHINE, perfmon::COL_TIME],
        }
    }
}

/// A generated dataset: the table plus its provenance.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Which paper dataset this models.
    pub kind: DatasetKind,
    /// The data.
    pub table: Table,
}

impl Dataset {
    /// Dataset name (Table 1).
    pub fn name(&self) -> &'static str {
        self.kind.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_generate_with_declared_dims() {
        for kind in DatasetKind::ALL {
            let ds = kind.generate(2_000, 1);
            assert_eq!(ds.table.len(), 2_000, "{}", kind.name());
            assert_eq!(ds.table.dims(), kind.dims(), "{}", kind.name());
            assert!(ds.kind.agg_dim() < ds.table.dims());
            for d in ds.kind.key_dims() {
                assert!(d < ds.table.dims());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for kind in DatasetKind::ALL {
            let a = kind.generate(500, 7).table;
            let b = kind.generate(500, 7).table;
            for r in (0..500).step_by(97) {
                assert_eq!(a.row(r), b.row(r), "{}", kind.name());
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = DatasetKind::Sales.generate(500, 1).table;
        let b = DatasetKind::Sales.generate(500, 2).table;
        let same = (0..500).filter(|&r| a.row(r) == b.row(r)).count();
        assert!(
            same < 50,
            "seeds should change the data ({same} identical rows)"
        );
    }

    #[test]
    fn templates_reference_valid_dims() {
        for kind in DatasetKind::ALL {
            for t in kind.olap_templates() {
                for f in &t.filters {
                    assert!(
                        f.dim() < kind.dims(),
                        "{}: template {}",
                        kind.name(),
                        t.name
                    );
                }
            }
        }
    }
}
