//! Sales dataset generator.
//!
//! The paper's sales data is a 30M-row, 6-attribute extract from a
//! commercial sales database with an anonymizing transformation, queried by
//! analyst report templates. We model the shape such data exposes to an
//! index: two Zipf-skewed categorical keys (store, product), a small uniform
//! categorical (segment), a log-normal monetary column, a small skewed count
//! and a date column with weekly seasonality.

use crate::dist::{log_normal, to_u64, Zipf};
use crate::workloads::{DimFilter, QueryTemplate};
use flood_store::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Store id (Zipf over 500 stores).
pub const COL_STORE: usize = 0;
/// Product id (Zipf over 5000 products).
pub const COL_PRODUCT: usize = 1;
/// Customer segment (uniform over 20).
pub const COL_SEGMENT: usize = 2;
/// Price in cents (log-normal).
pub const COL_PRICE: usize = 3;
/// Quantity (geometric-ish, 1–50).
pub const COL_QUANTITY: usize = 4;
/// Date as day number over two years, with weekly seasonality.
pub const COL_DATE: usize = 5;

/// Generate `n` rows.
pub fn generate(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5A1E5);
    let store_z = Zipf::new(500, 1.05);
    let product_z = Zipf::new(5_000, 1.1);
    let mut cols: Vec<Vec<u64>> = (0..6).map(|_| Vec::with_capacity(n)).collect();
    for _ in 0..n {
        cols[COL_STORE].push(store_z.sample(&mut rng) as u64);
        cols[COL_PRODUCT].push(product_z.sample(&mut rng) as u64);
        cols[COL_SEGMENT].push(rng.gen_range(0..20));
        cols[COL_PRICE].push(to_u64(log_normal(&mut rng, 7.0, 1.2), 1.0, 5_000_000.0));
        // Quantity: mostly small orders, occasionally bulk.
        let q = if rng.gen_bool(0.9) {
            rng.gen_range(1..=5)
        } else {
            rng.gen_range(6..=50)
        };
        cols[COL_QUANTITY].push(q);
        // Date: 730 days; weekends carry ~half the weekday volume.
        let day = loop {
            let d = rng.gen_range(0..730u64);
            if d % 7 < 5 || rng.gen_bool(0.5) {
                break d;
            }
        };
        cols[COL_DATE].push(day);
    }
    Table::from_named_columns(
        cols,
        ["store", "product", "segment", "price", "quantity", "date"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    )
}

/// Report-style analyst query templates (the paper's workload is a real
/// query log; these reproduce its shape: 2–4 dims per query, mixing
/// equality filters on categorical keys with ranges on date and price).
pub fn templates() -> Vec<QueryTemplate> {
    vec![
        QueryTemplate::new(
            "store_monthly_revenue",
            vec![
                DimFilter::point(COL_STORE),
                DimFilter::range(COL_DATE, 0.045),
            ],
        ),
        QueryTemplate::new(
            "product_quarter",
            vec![
                DimFilter::point(COL_PRODUCT),
                DimFilter::range(COL_DATE, 0.12),
            ],
        ),
        QueryTemplate::new(
            "segment_price_band",
            vec![
                DimFilter::point(COL_SEGMENT),
                DimFilter::range(COL_PRICE, 0.1),
                DimFilter::range(COL_DATE, 0.1),
            ],
        ),
        QueryTemplate::new(
            "store_product_drilldown",
            vec![
                DimFilter::point(COL_STORE),
                DimFilter::range(COL_PRODUCT, 0.02),
                DimFilter::range(COL_DATE, 0.25),
            ],
        ),
        QueryTemplate::new(
            "bulk_orders",
            vec![
                DimFilter::range(COL_QUANTITY, 0.05),
                DimFilter::range(COL_DATE, 0.05),
            ],
        ),
        QueryTemplate::new(
            "price_outliers_week",
            vec![
                DimFilter::range(COL_PRICE, 0.01),
                DimFilter::range(COL_DATE, 0.01),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_column_is_skewed() {
        let t = generate(20_000, 3);
        let mut counts = std::collections::HashMap::new();
        for r in 0..t.len() {
            *counts.entry(t.value(r, COL_STORE)).or_insert(0usize) += 1;
        }
        let max = *counts.values().max().expect("non-empty");
        let avg = t.len() / counts.len();
        assert!(
            max > avg * 5,
            "store ids should be Zipf-skewed: max {max}, avg {avg}"
        );
    }

    #[test]
    fn date_has_weekly_seasonality() {
        let t = generate(50_000, 3);
        let mut weekday = 0usize;
        let mut weekend = 0usize;
        for r in 0..t.len() {
            if t.value(r, COL_DATE) % 7 < 5 {
                weekday += 1;
            } else {
                weekend += 1;
            }
        }
        // 5 weekday slots vs 2 weekend slots at half rate → ratio ≈ 5:1.
        assert!(weekday > weekend * 3, "weekday {weekday} weekend {weekend}");
    }

    #[test]
    fn quantities_in_domain() {
        let t = generate(5_000, 3);
        for r in 0..t.len() {
            let q = t.value(r, COL_QUANTITY);
            assert!((1..=50).contains(&q));
        }
    }
}
