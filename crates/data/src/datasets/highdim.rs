//! High-dimensionality synthetic data (10+ dims) — ROADMAP "New workloads".
//!
//! The paper's dimensionality sweep (§7.5) uses purely uniform columns;
//! real wide tables mix uniform, skewed, correlated and low-cardinality
//! attributes. This generator cycles four column archetypes so an index —
//! and the parallel execution layer stressed by the thread-scaling
//! experiment — faces all of them at once:
//!
//! * `4k+0`: **uniform** over a 32-bit domain (like [`super::uniform`]);
//! * `4k+1`: **Zipf-skewed** categorical codes (hot keys dominate);
//! * `4k+2`: **correlated** with the preceding uniform column (its value
//!   plus log-normal noise), so grid columns overlap in information;
//! * `4k+3`: **log-normal** heavy-tailed measures (sales/latency shaped).

use crate::dist::{log_normal, to_u64, Zipf};
use crate::workloads::{DimFilter, QueryTemplate};
use flood_store::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Domain of the uniform and correlated columns.
pub const DOMAIN: u64 = 1 << 32;

/// Distinct values in each Zipf column.
pub const ZIPF_KEYS: usize = 10_000;

/// Generate `n` rows of `d >= 10` mixed-archetype dimensions.
///
/// # Panics
/// Panics if `d < 10` — for narrower tables use the paper-shaped
/// generators ([`super::uniform`] and the Table 1 stand-ins).
pub fn generate(n: usize, d: usize, seed: u64) -> Table {
    assert!(d >= 10, "highdim is for 10+ dims, got {d}");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD1A15);
    let zipf = Zipf::new(ZIPF_KEYS, 1.2);
    let mut cols: Vec<Vec<u64>> = vec![Vec::with_capacity(n); d];
    for _ in 0..n {
        let mut last_uniform = 0u64;
        for (dim, col) in cols.iter_mut().enumerate() {
            let v = match dim % 4 {
                0 => {
                    last_uniform = rng.gen_range(0..DOMAIN);
                    last_uniform
                }
                1 => zipf.sample(&mut rng) as u64,
                2 => {
                    // ±~2% of the domain around the correlated anchor.
                    let noise = log_normal(&mut rng, 16.0, 1.0);
                    (last_uniform.saturating_add(to_u64(noise, 0.0, DOMAIN as f64 / 50.0)))
                        .min(DOMAIN - 1)
                }
                _ => to_u64(log_normal(&mut rng, 10.0, 1.5), 0.0, 1e9),
            };
            col.push(v);
        }
    }
    Table::from_columns(cols)
}

/// Query templates for a `d`-dim table: analytics-shaped mixes filtering
/// 2, 3, 4 and 6 dimensions across all archetypes, per-dimension
/// selectivity balanced so each template's total lands near `target`.
pub fn templates(d: usize, target: f64) -> Vec<QueryTemplate> {
    assert!(d >= 10);
    let spread = |dims: Vec<usize>| -> Vec<DimFilter> {
        let per_dim = target.powf(1.0 / dims.len() as f64);
        dims.into_iter()
            .map(|dim| DimFilter::range(dim, per_dim))
            .collect()
    };
    vec![
        QueryTemplate::new("pair", spread(vec![0, 3])),
        QueryTemplate::new("correlated_pair", spread(vec![0, 2])),
        QueryTemplate::new("skew_triple", spread(vec![1, 4, 7])),
        QueryTemplate::new("wide_quad", spread(vec![0, 2, 5, 9])),
        QueryTemplate::new("six_dims", spread((0..6).collect())),
        QueryTemplate::new("tail_dims", spread(vec![d - 1, d - 2, d - 3])),
    ]
}

/// Generate `n` rows of `d >= 8` dimensions with **strong soft functional
/// dependencies** — the archetype the correlation layer (soft-FD collapse)
/// is built for. Dimensions cycle in blocks of 4:
///
/// * `4k+0`: **host** — uniform over [`DOMAIN`];
/// * `4k+1`: **dependent** — `host/2 + U[0, noise_frac·DOMAIN)`;
/// * `4k+2`: **dependent** — `host/4 + DOMAIN/8 + U[0, noise_frac·DOMAIN)`;
/// * `4k+3`: **independent** — uniform, uncorrelated with everything.
///
/// Each dependent breaks its dependency with probability `outlier_rate`
/// (the value is drawn uniformly instead), modelling dirty rows. At
/// `noise_frac ≈ 0.01` and `outlier_rate ≤ 0.02` the dependencies are
/// collapse-grade; at `noise_frac ≈ 0.3` they are barely detectable.
///
/// # Panics
/// Panics if `d < 8` (two full blocks are needed for cross-block queries).
pub fn correlated(n: usize, d: usize, seed: u64, noise_frac: f64, outlier_rate: f64) -> Table {
    assert!(d >= 8, "highdim::correlated needs 8+ dims, got {d}");
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0AA);
    let noise_w = ((DOMAIN as f64 * noise_frac) as u64).max(1);
    let mut cols: Vec<Vec<u64>> = vec![Vec::with_capacity(n); d];
    for _ in 0..n {
        let mut host = 0u64;
        for (dim, col) in cols.iter_mut().enumerate() {
            let broken = dim % 4 == 1 || dim % 4 == 2;
            let v = if broken && rng.gen_range(0.0..1.0) < outlier_rate {
                rng.gen_range(0..DOMAIN)
            } else {
                match dim % 4 {
                    0 => {
                        host = rng.gen_range(0..DOMAIN);
                        host
                    }
                    1 => (host / 2 + rng.gen_range(0..noise_w)).min(DOMAIN - 1),
                    2 => (host / 4 + DOMAIN / 8 + rng.gen_range(0..noise_w)).min(DOMAIN - 1),
                    _ => rng.gen_range(0..DOMAIN),
                }
            };
            col.push(v);
        }
    }
    Table::from_columns(cols)
}

/// Query templates for [`correlated`] tables: every template filters at
/// least one *dependent* dimension, which is where collapsing pays —
/// correlation-off must spend grid columns on redundant dimensions, while
/// correlation-on routes those predicates through the hosts.
pub fn correlated_templates(d: usize, target: f64) -> Vec<QueryTemplate> {
    assert!(d >= 8);
    let spread = |dims: Vec<usize>| -> Vec<DimFilter> {
        let per_dim = target.powf(1.0 / dims.len() as f64);
        dims.into_iter()
            .map(|dim| DimFilter::range(dim, per_dim))
            .collect()
    };
    vec![
        // Dependents from both blocks — four grid dims off, two on.
        QueryTemplate::new("dep_pair", spread(vec![1, 5])),
        QueryTemplate::new("dep_quad", spread(vec![1, 2, 5, 6])),
        // A host plus the other block's dependent.
        QueryTemplate::new("host_dep", spread(vec![0, 6])),
        // Dependent and independent mix.
        QueryTemplate::new("dep_indep", spread(vec![2, 3, 5])),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_mixed_archetypes() {
        let t = generate(5_000, 12, 7);
        assert_eq!(t.dims(), 12);
        assert_eq!(t.len(), 5_000);
        // Zipf columns are low-cardinality and hot-key heavy.
        let mut ones = 0usize;
        for r in 0..t.len() {
            assert!(t.value(r, 1) < ZIPF_KEYS as u64);
            if t.value(r, 1) == 1 {
                ones += 1;
            }
        }
        assert!(
            ones > t.len() / 20,
            "hot Zipf key should dominate: {ones} of {}",
            t.len()
        );
        // Correlated columns track their uniform anchor.
        let mut close = 0usize;
        for r in 0..t.len() {
            let (a, b) = (t.value(r, 0), t.value(r, 2));
            if b >= a && b - a <= DOMAIN / 25 {
                close += 1;
            }
        }
        assert!(
            close > t.len() * 9 / 10,
            "correlated column drifted: {close} of {}",
            t.len()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(500, 10, 3);
        let b = generate(500, 10, 3);
        for r in (0..500).step_by(53) {
            assert_eq!(a.row(r), b.row(r));
        }
        let c = generate(500, 10, 4);
        let same = (0..500).filter(|&r| a.row(r) == c.row(r)).count();
        assert!(same < 50, "seeds must change the data");
    }

    #[test]
    fn templates_stay_in_bounds() {
        for d in [10, 14, 18] {
            for t in templates(d, 0.001) {
                for f in &t.filters {
                    assert!(f.dim() < d, "{}: dim {} out of bounds", t.name, f.dim());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "10+ dims")]
    fn narrow_tables_rejected() {
        let _ = generate(100, 6, 1);
    }

    #[test]
    fn correlated_dependents_track_hosts() {
        let t = correlated(4_000, 8, 11, 0.01, 0.01);
        assert_eq!(t.dims(), 8);
        let w = (DOMAIN as f64 * 0.01) as u64;
        type HostMap = fn(u64) -> u64;
        let pairs: [(usize, usize, HostMap); 4] = [
            (0, 1, |h| h / 2),
            (0, 2, |h| h / 4 + DOMAIN / 8),
            (4, 5, |h| h / 2),
            (4, 6, |h| h / 4 + DOMAIN / 8),
        ];
        for (host, dep, f) in pairs {
            let close = (0..t.len())
                .filter(|&r| {
                    let base = f(t.value(r, host));
                    let v = t.value(r, dep);
                    v >= base && v - base <= w
                })
                .count();
            assert!(
                close > t.len() * 95 / 100,
                "dep {dep} drifted from host {host}: {close} of {}",
                t.len()
            );
        }
    }

    #[test]
    fn correlated_outlier_rate_is_respected() {
        let t = correlated(8_000, 8, 5, 0.01, 0.10);
        let w = (DOMAIN as f64 * 0.01) as u64;
        let broken = (0..t.len())
            .filter(|&r| {
                let base = t.value(r, 0) / 2;
                let v = t.value(r, 1);
                v < base || v - base > w
            })
            .count();
        let frac = broken as f64 / t.len() as f64;
        assert!(
            (0.05..0.16).contains(&frac),
            "outlier fraction {frac} far from 10%"
        );
    }

    #[test]
    fn correlated_templates_filter_dependents() {
        let ts = correlated_templates(8, 0.001);
        assert!(!ts.is_empty());
        for t in &ts {
            assert!(
                t.filters.iter().any(|f| matches!(f.dim() % 4, 1 | 2)),
                "{} filters no dependent dimension",
                t.name
            );
            for f in &t.filters {
                assert!(f.dim() < 8);
            }
        }
    }

    #[test]
    #[should_panic(expected = "8+ dims")]
    fn correlated_narrow_tables_rejected() {
        let _ = correlated(100, 4, 1, 0.01, 0.0);
    }
}
