//! Performance-monitoring dataset generator (§7.3).
//!
//! The paper's perfmon data logs all machines of a major US university for a
//! year: time, machine name, CPU, memory, swap and load average. "The data
//! in each dimension is non-uniform and often highly skewed" — so every
//! numeric column here is heavy-tailed or bimodal, machine names are Zipf
//! (chatty servers log more), and swap is mostly zero with a long tail.

use crate::dist::{log_normal, to_u64, Zipf};
use crate::workloads::{DimFilter, QueryTemplate};
use flood_store::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Timestamp, seconds within one year.
pub const COL_TIME: usize = 0;
/// Machine name (dictionary code, Zipf over 2000 hosts).
pub const COL_MACHINE: usize = 1;
/// CPU usage ×100 (bimodal: idle fleet + busy tail).
pub const COL_CPU: usize = 2;
/// Memory usage MB (log-normal).
pub const COL_MEM: usize = 3;
/// Swap usage MB (mostly zero, heavy tail).
pub const COL_SWAP: usize = 4;
/// Load average ×100 (heavy tail).
pub const COL_LOAD: usize = 5;

/// Generate `n` rows.
pub fn generate(n: usize, seed: u64) -> Table {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E4F);
    let machine_z = Zipf::new(2_000, 1.1);
    let mut cols: Vec<Vec<u64>> = (0..6).map(|_| Vec::with_capacity(n)).collect();
    const YEAR: u64 = 365 * 24 * 3_600;
    for _ in 0..n {
        // Business hours log ~3× the volume of nights/weekends.
        let t = loop {
            let t = rng.gen_range(0..YEAR);
            let hour = (t / 3_600) % 24;
            let day = (t / 86_400) % 7;
            if (8..20).contains(&hour) && day < 5 || rng.gen_bool(0.33) {
                break t;
            }
        };
        let cpu = if rng.gen_bool(0.7) {
            // Idle fleet: 0–15%.
            to_u64(log_normal(&mut rng, 1.0, 0.8), 0.0, 1_500.0)
        } else {
            // Busy: 40–100%.
            to_u64(4_000.0 + log_normal(&mut rng, 7.0, 0.8), 0.0, 10_000.0)
        };
        let mem = to_u64(log_normal(&mut rng, 7.5, 1.0), 16.0, 1_048_576.0);
        let swap = if rng.gen_bool(0.85) {
            0
        } else {
            to_u64(log_normal(&mut rng, 5.0, 1.5), 1.0, 262_144.0)
        };
        let load = to_u64(log_normal(&mut rng, 0.0, 1.3) * 100.0, 0.0, 12_800.0);
        cols[COL_TIME].push(t);
        cols[COL_MACHINE].push(machine_z.sample(&mut rng) as u64);
        cols[COL_CPU].push(cpu);
        cols[COL_MEM].push(mem);
        cols[COL_SWAP].push(swap);
        cols[COL_LOAD].push(load);
    }
    Table::from_named_columns(
        cols,
        ["time", "machine", "cpu", "mem", "swap", "load"]
            .iter()
            .map(|s| s.to_string())
            .collect(),
    )
}

/// Ops-style query templates: filters over time, machine name, CPU, memory,
/// swap and load average (§7.3).
pub fn templates() -> Vec<QueryTemplate> {
    vec![
        QueryTemplate::new(
            "machine_day",
            vec![
                DimFilter::point(COL_MACHINE),
                DimFilter::range(COL_TIME, 0.003),
            ],
        ),
        QueryTemplate::new(
            "hot_cpu_window",
            vec![
                DimFilter::range(COL_CPU, 0.02),
                DimFilter::range(COL_TIME, 0.05),
            ],
        ),
        QueryTemplate::new(
            "swapping_machines",
            vec![
                DimFilter::range(COL_SWAP, 0.05),
                DimFilter::range(COL_TIME, 0.1),
            ],
        ),
        QueryTemplate::new(
            "overloaded",
            vec![
                DimFilter::range(COL_LOAD, 0.02),
                DimFilter::range(COL_CPU, 0.3),
                DimFilter::range(COL_TIME, 0.2),
            ],
        ),
        QueryTemplate::new(
            "memory_pressure",
            vec![
                DimFilter::range(COL_MEM, 0.05),
                DimFilter::range(COL_SWAP, 0.2),
            ],
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_mostly_zero() {
        let t = generate(10_000, 9);
        let zeros = (0..t.len()).filter(|&r| t.value(r, COL_SWAP) == 0).count();
        let frac = zeros as f64 / t.len() as f64;
        assert!((0.8..0.9).contains(&frac), "zero-swap fraction {frac}");
    }

    #[test]
    fn cpu_is_bimodal() {
        let t = generate(20_000, 9);
        let idle = (0..t.len())
            .filter(|&r| t.value(r, COL_CPU) < 1_500)
            .count();
        let busy = (0..t.len())
            .filter(|&r| t.value(r, COL_CPU) >= 4_000)
            .count();
        let middle = t.len() - idle - busy;
        assert!(idle > t.len() / 2, "idle {idle}");
        assert!(busy > t.len() / 5, "busy {busy}");
        assert!(middle < t.len() / 10, "valley should be sparse: {middle}");
    }

    #[test]
    fn business_hours_dominate() {
        let t = generate(20_000, 9);
        let biz = (0..t.len())
            .filter(|&r| {
                let v = t.value(r, COL_TIME);
                let hour = (v / 3_600) % 24;
                let day = (v / 86_400) % 7;
                (8..20).contains(&hour) && day < 5
            })
            .count();
        assert!(biz > t.len() / 2, "business-hours rows {biz}");
    }
}
