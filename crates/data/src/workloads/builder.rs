//! Template instantiation: ranks → value ranges, plus selectivity
//! calibration ("filter ranges scaled so that the average query selectivity
//! is 0.1%", §7.3).

use super::{DimFilter, QueryTemplate, Workload};
use flood_store::{RangeQuery, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Maximum rows sampled when measuring a query's selectivity during
/// calibration.
const CALIBRATION_SAMPLE: usize = 4_000;

/// Instantiates query templates against a concrete table.
#[derive(Debug)]
pub struct QueryBuilder<'a> {
    table: &'a Table,
    /// Per-dimension sorted values (rank space), built lazily.
    sorted: Vec<Option<Vec<u64>>>,
    rng: StdRng,
}

impl<'a> QueryBuilder<'a> {
    /// New builder with a deterministic RNG.
    pub fn new(table: &'a Table, seed: u64) -> Self {
        QueryBuilder {
            table,
            sorted: vec![None; table.dims()],
            rng: StdRng::seed_from_u64(seed ^ 0x9B1D),
        }
    }

    fn sorted_dim(&mut self, dim: usize) -> &[u64] {
        if self.sorted[dim].is_none() {
            let mut v = self.table.column(dim).to_vec();
            v.sort_unstable();
            self.sorted[dim] = Some(v);
        }
        self.sorted[dim].as_deref().expect("just built")
    }

    /// Instantiate one template; `scale` multiplies every range filter's
    /// rank width (calibration knob).
    pub fn query(&mut self, template: &QueryTemplate, scale: f64) -> RangeQuery {
        self.query_in_band(template, scale, (0.0, 1.0))
    }

    /// [`QueryBuilder::query`] with every filter's center rank drawn from
    /// the `band` fraction of rank space instead of all of it — the
    /// center-of-mass knob drifting workloads shift per phase. The full
    /// band `(0.0, 1.0)` reproduces `query` exactly (same RNG stream).
    pub fn query_in_band(
        &mut self,
        template: &QueryTemplate,
        scale: f64,
        band: (f64, f64),
    ) -> RangeQuery {
        let n = self.table.len();
        let (b_lo, b_hi) = (band.0.clamp(0.0, 1.0), band.1.clamp(0.0, 1.0));
        assert!(b_lo < b_hi, "band must be non-empty: {band:?}");
        let lo_rank_bound = (b_lo * n as f64) as usize;
        let hi_rank_bound = (((b_hi * n as f64) as usize).max(lo_rank_bound + 1)).min(n);
        let mut q = RangeQuery::all(self.table.dims());
        for f in &template.filters {
            match *f {
                DimFilter::Point { dim } => {
                    let rank = self.rng.gen_range(lo_rank_bound..hi_rank_bound);
                    let v = self.sorted_dim(dim)[rank];
                    q = q.with_eq(dim, v);
                }
                DimFilter::Range { dim, selectivity } => {
                    let sel = (selectivity * scale).clamp(0.0, 1.0);
                    let width = ((sel * n as f64) as usize).max(1);
                    let center = self.rng.gen_range(lo_rank_bound..hi_rank_bound);
                    let lo_rank = center.saturating_sub(width / 2);
                    let hi_rank = (lo_rank + width - 1).min(n - 1);
                    let vals = self.sorted_dim(dim);
                    let (lo, hi) = (vals[lo_rank], vals[hi_rank]);
                    q = q.with_range(dim, lo, hi);
                }
            }
        }
        q
    }

    /// Measured selectivity of `q` on a row sample.
    pub fn measure_selectivity(&mut self, q: &RangeQuery) -> f64 {
        let n = self.table.len();
        if n == 0 {
            return 0.0;
        }
        let step = (n / CALIBRATION_SAMPLE).max(1);
        let mut hits = 0usize;
        let mut total = 0usize;
        let mut row_buf = Vec::with_capacity(self.table.dims());
        let mut r = self.rng.gen_range(0..step);
        while r < n {
            self.table.row_into(r, &mut row_buf);
            if q.matches(&row_buf) {
                hits += 1;
            }
            total += 1;
            r += step;
        }
        hits as f64 / total.max(1) as f64
    }

    /// Generate a calibrated workload: `n` train + `n` test queries drawn
    /// from `templates` with the given type `weights`. When
    /// `target_selectivity` is set, each query's range widths are rescaled
    /// (up to 4 rounds) until its measured selectivity approaches the
    /// target.
    pub fn workload(
        &mut self,
        name: &str,
        templates: &[QueryTemplate],
        weights: &[f64],
        n: usize,
        target_selectivity: Option<f64>,
    ) -> Workload {
        assert_eq!(templates.len(), weights.len());
        assert!(!templates.is_empty(), "need at least one template");
        let total_w: f64 = weights.iter().sum();
        let gen_split = |count: usize, me: &mut Self| -> Vec<RangeQuery> {
            (0..count)
                .map(|_| {
                    // Weighted template choice.
                    let mut pick = me.rng.gen_range(0.0..total_w);
                    let mut ti = templates.len() - 1;
                    for (i, &w) in weights.iter().enumerate() {
                        if pick < w {
                            ti = i;
                            break;
                        }
                        pick -= w;
                    }
                    me.calibrated_query(&templates[ti], target_selectivity)
                })
                .collect()
        };
        let train = gen_split(n, self);
        let test = gen_split(n, self);
        Workload {
            name: name.to_string(),
            train,
            test,
        }
    }

    /// One query, rescaled toward the target total selectivity.
    pub fn calibrated_query(
        &mut self,
        template: &QueryTemplate,
        target: Option<f64>,
    ) -> RangeQuery {
        self.calibrated_query_in_band(template, target, (0.0, 1.0))
    }

    /// [`QueryBuilder::calibrated_query`] with centers drawn from a rank
    /// band (see [`QueryBuilder::query_in_band`]).
    pub fn calibrated_query_in_band(
        &mut self,
        template: &QueryTemplate,
        target: Option<f64>,
        band: (f64, f64),
    ) -> RangeQuery {
        let n_ranges = template
            .filters
            .iter()
            .filter(|f| matches!(f, DimFilter::Range { .. }))
            .count();
        let mut scale = 1.0f64;
        let mut q = self.query_in_band(template, scale, band);
        let Some(target) = target else {
            return q;
        };
        if n_ranges == 0 {
            return q; // nothing scalable (pure point lookups)
        }
        for _ in 0..4 {
            let sel = self.measure_selectivity(&q);
            if sel <= 0.0 {
                scale *= 2.0;
            } else {
                let ratio = target / sel;
                if (0.5..2.0).contains(&ratio) {
                    break;
                }
                scale *= ratio.powf(1.0 / n_ranges as f64);
            }
            q = self.query_in_band(template, scale, band);
        }
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let n = 30_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| (i * 2654435761) % 100_000).collect(),
            (0..n).map(|i| (i * i) % 50_000).collect(),
            (0..n).collect(),
        ])
    }

    #[test]
    fn range_filter_hits_requested_selectivity() {
        let t = table();
        let mut b = QueryBuilder::new(&t, 1);
        let template = QueryTemplate::new("r", vec![DimFilter::range(0, 0.05)]);
        let mut total = 0.0;
        for _ in 0..20 {
            let q = b.query(&template, 1.0);
            total += b.measure_selectivity(&q);
        }
        let avg = total / 20.0;
        assert!((0.02..0.10).contains(&avg), "avg selectivity {avg}");
    }

    #[test]
    fn point_filter_is_equality() {
        let t = table();
        let mut b = QueryBuilder::new(&t, 1);
        let template = QueryTemplate::new("p", vec![DimFilter::point(1)]);
        let q = b.query(&template, 1.0);
        let (lo, hi) = q.bound(1).expect("filtered");
        assert_eq!(lo, hi);
    }

    #[test]
    fn calibration_converges() {
        let t = table();
        let mut b = QueryBuilder::new(&t, 5);
        // Deliberately mis-sized template: 30% per dim on two dims = 9%
        // joint; calibrate down to 0.1%.
        let template = QueryTemplate::new(
            "wide",
            vec![DimFilter::range(0, 0.3), DimFilter::range(2, 0.3)],
        );
        let mut avg = 0.0;
        for _ in 0..10 {
            let q = b.calibrated_query(&template, Some(0.001));
            avg += b.measure_selectivity(&q);
        }
        avg /= 10.0;
        assert!(
            (0.0001..0.01).contains(&avg),
            "calibrated selectivity {avg}, want ≈0.001"
        );
    }

    #[test]
    fn band_confines_centers_and_full_band_matches_query() {
        let t = table();
        let template = QueryTemplate::new("r", vec![DimFilter::range(2, 0.02)]);
        // Dim 2 is the identity column, so value space = rank space: a
        // band's queries must land in the matching value band.
        let mut b = QueryBuilder::new(&t, 3);
        for _ in 0..10 {
            let q = b.query_in_band(&template, 1.0, (0.7, 1.0));
            let (lo, _) = q.bound(2).expect("filtered");
            assert!(lo >= 30_000 * 6 / 10, "low band center: lo={lo}");
        }
        // The full band is the same RNG stream as plain `query`.
        let mut b1 = QueryBuilder::new(&t, 7);
        let mut b2 = QueryBuilder::new(&t, 7);
        for _ in 0..5 {
            assert_eq!(
                b1.query(&template, 1.0),
                b2.query_in_band(&template, 1.0, (0.0, 1.0))
            );
        }
    }

    #[test]
    fn scale_parameter_widens_ranges() {
        let t = table();
        let mut b = QueryBuilder::new(&t, 9);
        let template = QueryTemplate::new("r", vec![DimFilter::range(2, 0.01)]);
        let narrow = b.query(&template, 1.0);
        let wide = b.query(&template, 10.0);
        let w = |q: &RangeQuery| {
            let (lo, hi) = q.bound(2).expect("filtered");
            hi - lo
        };
        assert!(w(&wide) > w(&narrow) * 3, "{} vs {}", w(&wide), w(&narrow));
    }
}
