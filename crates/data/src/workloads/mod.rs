//! Query-workload generation (§7.3, §7.4).
//!
//! A workload is built from *query templates*: each template names the
//! filtered dimensions and a per-dimension selectivity; instantiating a
//! template picks a random center in the data and converts rank-widths to
//! value ranges, so requested selectivities hold regardless of skew.
//! Workloads are calibrated so the average total selectivity matches a
//! target (the paper scales everything to 0.1%), and every workload comes as
//! a train/test pair drawn from the same distribution (§7.3).

pub mod builder;
pub mod drift;
pub mod random;

pub use builder::QueryBuilder;
pub use drift::{DriftConfig, DriftMode, DriftPhase, DriftingWorkload};
pub use random::random_workload;

use crate::datasets::Dataset;
use flood_store::RangeQuery;
use serde::{Deserialize, Serialize};

/// A single filter inside a query template.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DimFilter {
    /// A range filter targeting the given fraction of the dimension's mass.
    Range {
        /// Filtered dimension.
        dim: usize,
        /// Target per-dimension selectivity in (0, 1].
        selectivity: f64,
    },
    /// An equality filter on a value sampled from the data.
    Point {
        /// Filtered dimension.
        dim: usize,
    },
}

impl DimFilter {
    /// Range filter constructor.
    pub fn range(dim: usize, selectivity: f64) -> Self {
        assert!(selectivity > 0.0 && selectivity <= 1.0);
        DimFilter::Range { dim, selectivity }
    }

    /// Equality filter constructor.
    pub fn point(dim: usize) -> Self {
        DimFilter::Point { dim }
    }

    /// The filtered dimension.
    pub fn dim(&self) -> usize {
        match *self {
            DimFilter::Range { dim, .. } | DimFilter::Point { dim } => dim,
        }
    }
}

/// A named query template (one "query type" in the paper's terms).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryTemplate {
    /// Template name (for diagnostics).
    pub name: String,
    /// The filters each instantiation carries.
    pub filters: Vec<DimFilter>,
}

impl QueryTemplate {
    /// Create a template.
    pub fn new(name: &str, filters: Vec<DimFilter>) -> Self {
        QueryTemplate {
            name: name.to_string(),
            filters,
        }
    }

    /// Dimensions this template filters.
    pub fn dims(&self) -> Vec<usize> {
        self.filters.iter().map(DimFilter::dim).collect()
    }
}

/// The workload variants of Fig 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// O — the dataset's OLAP templates with skewed (Zipf) type weights.
    OlapSkewed,
    /// Ou — the same templates, each equally likely.
    OlapUniform,
    /// O1 — point lookups on a single primary-key attribute.
    OltpSingleKey,
    /// O2 — point lookups on two key attributes.
    OltpTwoKeys,
    /// OO — an equal mix of OLTP (O1) and OLAP (O) queries.
    Mixed,
    /// ST — a single query type.
    SingleType,
    /// FD — queries over a strict subset of the indexed dimensions.
    FewerDims,
    /// MD — every query filters all dimensions.
    ManyDims,
}

impl WorkloadKind {
    /// Short label used in Fig 9's x-axis.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::OlapSkewed => "O",
            WorkloadKind::OlapUniform => "Ou",
            WorkloadKind::OltpSingleKey => "O1",
            WorkloadKind::OltpTwoKeys => "O2",
            WorkloadKind::Mixed => "OO",
            WorkloadKind::SingleType => "ST",
            WorkloadKind::FewerDims => "FD",
            WorkloadKind::ManyDims => "MD",
        }
    }
}

/// A generated workload: train and test splits from the same distribution.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// Queries the layout is optimized on.
    pub train: Vec<RangeQuery>,
    /// Queries results are reported on.
    pub test: Vec<RangeQuery>,
}

impl Workload {
    /// Generate a Fig 9-style workload variant for a dataset.
    ///
    /// `n` queries land in each split. The average total selectivity is
    /// calibrated to `target_selectivity` (the paper uses 0.001) where the
    /// templates allow (point lookups keep their natural selectivity).
    pub fn generate(
        kind: WorkloadKind,
        dataset: &Dataset,
        n: usize,
        target_selectivity: f64,
        seed: u64,
    ) -> Workload {
        let mut builder = QueryBuilder::new(&dataset.table, seed);
        let olap = dataset.kind.olap_templates();
        let keys = dataset.kind.key_dims();
        let (templates, weights): (Vec<QueryTemplate>, Vec<f64>) = match kind {
            WorkloadKind::OlapSkewed => {
                let w = (0..olap.len()).map(|i| 1.0 / (i + 1) as f64).collect();
                (olap, w)
            }
            WorkloadKind::OlapUniform => {
                let w = vec![1.0; olap.len()];
                (olap, w)
            }
            WorkloadKind::OltpSingleKey => (
                vec![QueryTemplate::new(
                    "point_1key",
                    vec![DimFilter::point(keys[0])],
                )],
                vec![1.0],
            ),
            WorkloadKind::OltpTwoKeys => (
                vec![QueryTemplate::new(
                    "point_2key",
                    vec![DimFilter::point(keys[0]), DimFilter::point(keys[1])],
                )],
                vec![1.0],
            ),
            WorkloadKind::Mixed => {
                let mut t = vec![QueryTemplate::new(
                    "point_1key",
                    vec![DimFilter::point(keys[0])],
                )];
                let mut w = vec![olap.len() as f64]; // half the mass to OLTP
                for (i, q) in olap.into_iter().enumerate() {
                    w.push(1.0 / (i + 1) as f64 * olap_norm(w.len()));
                    t.push(q);
                }
                (t, w)
            }
            WorkloadKind::SingleType => {
                let first = olap.into_iter().next().expect("dataset has templates");
                (vec![first], vec![1.0])
            }
            WorkloadKind::FewerDims => {
                // Restrict to the dims of the first two templates; drop
                // filters outside the subset.
                let mut subset: Vec<usize> = Vec::new();
                for t in olap.iter().take(2) {
                    for d in t.dims() {
                        if !subset.contains(&d) {
                            subset.push(d);
                        }
                    }
                }
                let reduced: Vec<QueryTemplate> = olap
                    .iter()
                    .map(|t| {
                        QueryTemplate::new(
                            &format!("fd_{}", t.name),
                            t.filters
                                .iter()
                                .copied()
                                .filter(|f| subset.contains(&f.dim()))
                                .collect(),
                        )
                    })
                    .filter(|t| !t.filters.is_empty())
                    .collect();
                let w = vec![1.0; reduced.len()];
                (reduced, w)
            }
            WorkloadKind::ManyDims => {
                let d = dataset.table.dims();
                let per_dim = target_selectivity.powf(1.0 / d as f64);
                let filters = (0..d).map(|dim| DimFilter::range(dim, per_dim)).collect();
                (vec![QueryTemplate::new("all_dims", filters)], vec![1.0])
            }
        };
        let name = format!("{}-{}", dataset.name(), kind.label());
        let calibrate = !matches!(
            kind,
            WorkloadKind::OltpSingleKey | WorkloadKind::OltpTwoKeys
        );
        builder.workload(
            &name,
            &templates,
            &weights,
            n,
            if calibrate {
                Some(target_selectivity)
            } else {
                None
            },
        )
    }

    /// Total number of queries across both splits.
    pub fn len(&self) -> usize {
        self.train.len() + self.test.len()
    }

    /// True when the workload holds no queries.
    pub fn is_empty(&self) -> bool {
        self.train.is_empty() && self.test.is_empty()
    }
}

/// Weight normalizer so OLTP and OLAP halves balance in [`WorkloadKind::Mixed`].
fn olap_norm(_idx: usize) -> f64 {
    1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;

    fn dataset() -> Dataset {
        DatasetKind::Sales.generate(20_000, 3)
    }

    fn selectivity(ds: &Dataset, q: &RangeQuery) -> f64 {
        let t = &ds.table;
        let hits = (0..t.len()).filter(|&r| q.matches(&t.row(r))).count();
        hits as f64 / t.len() as f64
    }

    #[test]
    fn all_kinds_generate() {
        let ds = dataset();
        for kind in [
            WorkloadKind::OlapSkewed,
            WorkloadKind::OlapUniform,
            WorkloadKind::OltpSingleKey,
            WorkloadKind::OltpTwoKeys,
            WorkloadKind::Mixed,
            WorkloadKind::SingleType,
            WorkloadKind::FewerDims,
            WorkloadKind::ManyDims,
        ] {
            let w = Workload::generate(kind, &ds, 20, 0.001, 1);
            assert_eq!(w.train.len(), 20, "{}", kind.label());
            assert_eq!(w.test.len(), 20, "{}", kind.label());
        }
    }

    #[test]
    fn olap_selectivity_calibrated() {
        let ds = dataset();
        let w = Workload::generate(WorkloadKind::OlapUniform, &ds, 30, 0.002, 7);
        let avg: f64 = w.test.iter().map(|q| selectivity(&ds, q)).sum::<f64>() / 30.0;
        assert!(
            (0.0004..0.01).contains(&avg),
            "avg selectivity {avg}, target 0.002"
        );
    }

    #[test]
    fn oltp_queries_are_points() {
        let ds = dataset();
        let w = Workload::generate(WorkloadKind::OltpTwoKeys, &ds, 10, 0.001, 1);
        for q in &w.test {
            assert_eq!(q.num_filtered(), 2);
            for d in q.filtered_dims() {
                let (lo, hi) = q.bound(d).expect("filtered");
                assert_eq!(lo, hi, "point lookups are equalities");
            }
        }
    }

    #[test]
    fn fewer_dims_uses_strict_subset() {
        let ds = dataset();
        let w = Workload::generate(WorkloadKind::FewerDims, &ds, 15, 0.001, 1);
        let mut used: Vec<usize> = Vec::new();
        for q in w.train.iter().chain(&w.test) {
            for d in q.filtered_dims() {
                if !used.contains(&d) {
                    used.push(d);
                }
            }
        }
        assert!(
            used.len() < ds.table.dims(),
            "must be a strict subset: {used:?}"
        );
    }

    #[test]
    fn many_dims_filters_everything() {
        let ds = dataset();
        let w = Workload::generate(WorkloadKind::ManyDims, &ds, 10, 0.001, 1);
        for q in &w.test {
            assert_eq!(q.num_filtered(), ds.table.dims());
        }
    }

    #[test]
    fn train_and_test_differ_but_same_shape() {
        let ds = dataset();
        let w = Workload::generate(WorkloadKind::OlapSkewed, &ds, 25, 0.001, 1);
        assert_ne!(w.train, w.test);
        // Same distribution ⇒ every query's filtered-dim signature comes
        // from the template set (both splits draw the same templates).
        let allowed: Vec<Vec<usize>> = ds
            .kind
            .olap_templates()
            .iter()
            .map(|t| {
                let mut d = t.dims();
                d.sort_unstable();
                d
            })
            .collect();
        for q in w.train.iter().chain(&w.test) {
            let mut sig = q.filtered_dims();
            sig.sort_unstable();
            assert!(allowed.contains(&sig), "unexpected signature {sig:?}");
        }
    }
}
