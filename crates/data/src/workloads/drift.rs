//! Drifting workloads: phased query streams whose shape shifts over time.
//!
//! The paper's §8 sketches how Flood survives workload shift (re-price the
//! layout on a recent window, re-learn when cost degrades); Tsunami (Ding
//! et al., VLDB 2020) shows skew and drift are exactly where a learned
//! layout wins or loses. This module generates the stimulus: a stream of
//! `K` phases over one table, where each phase moves three knobs at once —
//!
//! 1. **selected-dimension mix**: the hot (filtered) dimensions rotate
//!    from phase to phase, so the old layout's grid stops covering the
//!    queried dimensions;
//! 2. **selectivity**: the per-phase total selectivity cycles around the
//!    target (tighter, on-target, wider), stressing the cost model's
//!    column-count choices;
//! 3. **center of mass**: range centers are drawn from a rank band that
//!    slides across the data per phase, so even unchanged dimensions see a
//!    different hot region.
//!
//! Two transition shapes: [`DriftMode::Abrupt`] switches the distribution
//! at the phase boundary (a step function, the hardest case for a frozen
//! layout), [`DriftMode::Gradual`] cross-fades — within phase `k`, the
//! probability of drawing from phase `k+1`'s spec ramps linearly, so the
//! boundary is smooth.
//!
//! Everything is built from the existing template machinery
//! ([`QueryTemplate`] + [`QueryBuilder`], with per-query selectivity
//! calibration), deterministic given a seed.

use super::{DimFilter, QueryBuilder, QueryTemplate};
use flood_store::{RangeQuery, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the query distribution moves between phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DriftMode {
    /// Step change at each phase boundary.
    Abrupt,
    /// Linear cross-fade: late queries of phase `k` increasingly draw from
    /// phase `k+1`'s spec.
    Gradual,
}

impl DriftMode {
    /// Short label for tables and CLI output.
    pub fn label(self) -> &'static str {
        match self {
            DriftMode::Abrupt => "abrupt",
            DriftMode::Gradual => "gradual",
        }
    }
}

/// Configuration for [`DriftingWorkload::generate`].
#[derive(Debug, Clone, Copy)]
pub struct DriftConfig {
    /// Number of phases `K`.
    pub phases: usize,
    /// Queries per phase.
    pub queries_per_phase: usize,
    /// Filtered dimensions per query (clamped to the table's dims).
    pub filters_per_query: usize,
    /// Average total selectivity the phases cycle around (the paper's
    /// default is 0.001).
    pub target_selectivity: f64,
    /// Transition shape.
    pub mode: DriftMode,
    /// Seed for all randomness (templates, centers, calibration).
    pub seed: u64,
}

impl Default for DriftConfig {
    fn default() -> Self {
        DriftConfig {
            phases: 4,
            queries_per_phase: 200,
            filters_per_query: 2,
            target_selectivity: 0.001,
            mode: DriftMode::Abrupt,
            seed: 0xD21F7,
        }
    }
}

/// The generation-time spec of one phase (before queries are drawn).
#[derive(Debug, Clone)]
struct PhaseSpec {
    /// Weighted templates: the primary on the phase's hot dimensions plus
    /// a lighter secondary rotated by one, so each phase is a *mix*.
    templates: Vec<(QueryTemplate, f64)>,
    /// Rank band range centers are drawn from.
    band: (f64, f64),
    /// Target total selectivity for this phase's queries.
    selectivity: f64,
    /// The primary hot dimensions (diagnostics).
    hot_dims: Vec<usize>,
}

/// One phase of a generated drifting workload.
#[derive(Debug, Clone)]
pub struct DriftPhase {
    /// Phase name (`p0`, `p1`, …).
    pub name: String,
    /// The primary hot dimensions of this phase.
    pub hot_dims: Vec<usize>,
    /// Rank band the phase's range centers were drawn from.
    pub center_band: (f64, f64),
    /// Target total selectivity of the phase.
    pub selectivity: f64,
    /// The phase's queries, in arrival order.
    pub queries: Vec<RangeQuery>,
}

/// A phased query stream over one table, plus a training split drawn from
/// phase 0's distribution (what a frozen index gets to learn on).
#[derive(Debug, Clone)]
pub struct DriftingWorkload {
    /// Display name (`drift-abrupt-<seed>`).
    pub name: String,
    /// Transition shape the stream was generated with.
    pub mode: DriftMode,
    /// Training queries from phase 0's distribution (separate draws from
    /// the phase-0 stream).
    pub train: Vec<RangeQuery>,
    /// The phases, in arrival order.
    pub phases: Vec<DriftPhase>,
}

impl DriftingWorkload {
    /// Generate the phased stream over `table`.
    ///
    /// # Panics
    /// Panics on an empty table or a config with zero phases/queries.
    pub fn generate(table: &Table, cfg: &DriftConfig) -> Self {
        assert!(!table.is_empty(), "drift needs data");
        assert!(cfg.phases > 0 && cfg.queries_per_phase > 0, "empty drift");
        let specs: Vec<PhaseSpec> = (0..cfg.phases).map(|k| phase_spec(table, cfg, k)).collect();
        let mut qb = QueryBuilder::new(table, cfg.seed);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xD21F);

        // Training split: phase 0's distribution, separate draws.
        let train = (0..cfg.queries_per_phase)
            .map(|_| draw(&mut qb, &mut rng, &specs[0]))
            .collect();

        let phases = specs
            .iter()
            .enumerate()
            .map(|(k, spec)| {
                let next = specs.get(k + 1).unwrap_or(spec);
                let queries = (0..cfg.queries_per_phase)
                    .map(|i| {
                        let from_next = match cfg.mode {
                            DriftMode::Abrupt => false,
                            DriftMode::Gradual => {
                                let ramp = i as f64 / cfg.queries_per_phase.max(1) as f64;
                                rng.gen_range(0.0..1.0) < ramp
                            }
                        };
                        let s = if from_next { next } else { spec };
                        draw(&mut qb, &mut rng, s)
                    })
                    .collect();
                DriftPhase {
                    name: format!("p{k}"),
                    hot_dims: spec.hot_dims.clone(),
                    center_band: spec.band,
                    selectivity: spec.selectivity,
                    queries,
                }
            })
            .collect();
        DriftingWorkload {
            name: format!("drift-{}-{}", cfg.mode.label(), cfg.seed),
            mode: cfg.mode,
            train,
            phases,
        }
    }

    /// Every phase's queries, concatenated in arrival order.
    pub fn stream(&self) -> impl Iterator<Item = &RangeQuery> {
        self.phases.iter().flat_map(|p| p.queries.iter())
    }

    /// Total queries across all phases (the training split not included).
    pub fn len(&self) -> usize {
        self.phases.iter().map(|p| p.queries.len()).sum()
    }

    /// True when no phase holds queries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One weighted draw from a phase spec.
fn draw(qb: &mut QueryBuilder<'_>, rng: &mut StdRng, spec: &PhaseSpec) -> RangeQuery {
    let total: f64 = spec.templates.iter().map(|(_, w)| w).sum();
    let mut pick = rng.gen_range(0.0..total);
    let mut chosen = &spec.templates[spec.templates.len() - 1].0;
    for (t, w) in &spec.templates {
        if pick < *w {
            chosen = t;
            break;
        }
        pick -= w;
    }
    qb.calibrated_query_in_band(chosen, Some(spec.selectivity), spec.band)
}

/// Phase `k`'s spec: rotated hot dimensions, cycled selectivity, sliding
/// center band.
fn phase_spec(table: &Table, cfg: &DriftConfig, k: usize) -> PhaseSpec {
    let d = table.dims();
    let f = cfg.filters_per_query.clamp(1, d);
    // Hot dims rotate by `f` per phase, so consecutive phases share no
    // primary dimension whenever `d ≥ 2f`.
    let hot_dims: Vec<usize> = (0..f).map(|j| (k * f + j) % d).collect();
    // Secondary template: the rotation by one — each phase is a mix of
    // dimension sets, not a single query type.
    let alt_dims: Vec<usize> = (0..f).map(|j| (k * f + j + 1) % d).collect();
    // Selectivity cycles ×0.5 / ×1 / ×2 around the target.
    let selectivity = cfg.target_selectivity * 2f64.powi((k % 3) as i32 - 1);
    // Center band slides across rank space with the phase index; wide
    // enough (≥ 25% of ranks) that calibration always has room.
    let progress = if cfg.phases > 1 {
        k as f64 / (cfg.phases - 1) as f64
    } else {
        0.5
    };
    let half = (0.5 / cfg.phases as f64).max(0.125);
    let center = half + progress * (1.0 - 2.0 * half);
    let band = (center - half, center + half);

    let per_dim = selectivity.powf(1.0 / f as f64).clamp(1e-6, 1.0);
    let template = |name: String, dims: &[usize]| {
        QueryTemplate::new(
            &name,
            dims.iter()
                .map(|&dim| DimFilter::range(dim, per_dim))
                .collect(),
        )
    };
    PhaseSpec {
        templates: vec![
            (template(format!("p{k}-hot"), &hot_dims), 3.0),
            (template(format!("p{k}-alt"), &alt_dims), 1.0),
        ],
        band,
        selectivity,
        hot_dims,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let n = 20_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| (i * 2654435761) % 100_000).collect(),
            (0..n).map(|i| (i * 7919) % 50_000).collect(),
            (0..n).collect(),
            (0..n).map(|i| (i * i) % 30_000).collect(),
        ])
    }

    fn cfg() -> DriftConfig {
        DriftConfig {
            phases: 4,
            queries_per_phase: 30,
            filters_per_query: 2,
            ..Default::default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let t = table();
        let a = DriftingWorkload::generate(&t, &cfg());
        let b = DriftingWorkload::generate(&t, &cfg());
        assert_eq!(a.train, b.train);
        for (pa, pb) in a.phases.iter().zip(&b.phases) {
            assert_eq!(pa.queries, pb.queries);
        }
        let other = DriftingWorkload::generate(&t, &DriftConfig { seed: 999, ..cfg() });
        assert_ne!(a.train, other.train, "seed must matter");
    }

    #[test]
    fn phases_rotate_hot_dimensions() {
        let t = table();
        let w = DriftingWorkload::generate(&t, &cfg());
        assert_eq!(w.phases.len(), 4);
        assert_eq!(w.len(), 4 * 30);
        assert_ne!(
            w.phases[0].hot_dims, w.phases[1].hot_dims,
            "consecutive phases must move the hot set"
        );
        // With d=4 and f=2, phases 0 and 2 share hot dims but differ in
        // band/selectivity.
        assert_ne!(w.phases[0].center_band, w.phases[2].center_band);
    }

    #[test]
    fn abrupt_queries_filter_their_phases_template_dims() {
        let t = table();
        let w = DriftingWorkload::generate(&t, &cfg());
        for (k, p) in w.phases.iter().enumerate() {
            let hot: Vec<usize> = p.hot_dims.clone();
            let alt: Vec<usize> = (0..hot.len()).map(|j| (k * 2 + j + 1) % 4).collect();
            for q in &p.queries {
                let mut dims = q.filtered_dims();
                dims.sort_unstable();
                let mut h = hot.clone();
                h.sort_unstable();
                let mut a = alt.clone();
                a.sort_unstable();
                assert!(
                    dims == h || dims == a,
                    "phase {k}: unexpected dims {dims:?} (hot {h:?}, alt {a:?})"
                );
            }
        }
    }

    #[test]
    fn gradual_mixes_in_next_phase_late() {
        let t = table();
        let w = DriftingWorkload::generate(
            &t,
            &DriftConfig {
                mode: DriftMode::Gradual,
                queries_per_phase: 60,
                ..cfg()
            },
        );
        // Phase 0 (hot {0,1} / alt {1,2}) should contain some draws from
        // phase 1's spec (hot {2,3} / alt {3,0}) — and they should
        // concentrate in the late half of the phase.
        let p0 = &w.phases[0];
        let from_next = |q: &RangeQuery| {
            let mut dims = q.filtered_dims();
            dims.sort_unstable();
            dims == vec![2, 3] || dims == vec![0, 3]
        };
        let early = p0.queries[..30].iter().filter(|q| from_next(q)).count();
        let late = p0.queries[30..].iter().filter(|q| from_next(q)).count();
        assert!(late > 0, "gradual mode must blend the next phase in");
        assert!(
            late >= early,
            "the blend ramps: {early} early vs {late} late"
        );
    }

    #[test]
    fn center_band_slides_across_rank_space() {
        let t = table();
        let w = DriftingWorkload::generate(&t, &cfg());
        // Dim 2 is the identity column: rank = value. Average range
        // midpoint on dim-2 filters must grow from first to last phase.
        let avg_mid = |p: &DriftPhase| {
            let mids: Vec<f64> = p
                .queries
                .iter()
                .filter_map(|q| q.bound(2).map(|(lo, hi)| (lo + hi) as f64 / 2.0))
                .collect();
            if mids.is_empty() {
                None
            } else {
                Some(mids.iter().sum::<f64>() / mids.len() as f64)
            }
        };
        // Phases 0/1 both filter dim 2 in some template (alt of 0 = {1,2},
        // hot of 1 = {2,3}); last phase hot = {2,3} again at d=4... use
        // first and last phases that filter dim 2.
        let firsts: Vec<f64> = w.phases.iter().take(2).filter_map(avg_mid).collect();
        let lasts: Vec<f64> = w.phases.iter().rev().take(2).filter_map(avg_mid).collect();
        let first = firsts.iter().sum::<f64>() / firsts.len().max(1) as f64;
        let last = lasts.iter().sum::<f64>() / lasts.len().max(1) as f64;
        assert!(
            last > first,
            "center of mass must slide up the ranks: {first} → {last}"
        );
    }

    #[test]
    fn selectivity_stays_in_calibrated_range() {
        let t = table();
        let w = DriftingWorkload::generate(&t, &cfg());
        let sel = |q: &RangeQuery| {
            (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as f64 / t.len() as f64
        };
        for p in &w.phases {
            let avg = p.queries.iter().map(sel).sum::<f64>() / p.queries.len() as f64;
            // Phase targets cycle in [target/2, target*2]; calibration is
            // approximate, so accept an order of magnitude around that.
            assert!(
                (2e-5..0.05).contains(&avg),
                "{}: avg selectivity {avg}, target {}",
                p.name,
                p.selectivity
            );
        }
    }

    #[test]
    fn train_split_comes_from_phase_zero() {
        let t = table();
        let w = DriftingWorkload::generate(&t, &cfg());
        assert_eq!(w.train.len(), 30);
        assert_ne!(w.train, w.phases[0].queries, "separate draws");
        let hot = vec![0usize, 1];
        let alt = vec![1usize, 2];
        for q in &w.train {
            let mut dims = q.filtered_dims();
            dims.sort_unstable();
            assert!(
                dims == hot || dims == alt,
                "train must follow phase 0's mix: {dims:?}"
            );
        }
    }
}
