//! Random workloads for the dynamic-shift experiment (Fig 10).
//!
//! "Each workload ... consists of at most 10 distinct query types, and each
//! query type in turn consists of up to 6 dimensions, both chosen uniformly
//! at random. The selectivities of each dimension are chosen randomly, with
//! the constraint that all queries have an average total selectivity of
//! around 0.1% and are more selective on key attributes."

use super::{DimFilter, QueryBuilder, QueryTemplate, Workload};
use flood_store::Table;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generate one random workload over `table`.
///
/// `key_dims` are treated as key attributes (tighter selectivities);
/// `n` queries land in each of the train/test splits.
pub fn random_workload(
    table: &Table,
    key_dims: &[usize],
    n: usize,
    target_selectivity: f64,
    seed: u64,
) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xF16A);
    let d = table.dims();
    let n_types = rng.gen_range(1..=10usize);
    let mut templates = Vec::with_capacity(n_types);
    for t in 0..n_types {
        let k = rng.gen_range(1..=d.min(6));
        let mut dims: Vec<usize> = (0..d).collect();
        dims.shuffle(&mut rng);
        dims.truncate(k);
        let filters = dims
            .iter()
            .map(|&dim| {
                // Per-dim selectivity random in log space; keys tighter.
                let base: f64 = 10f64.powf(rng.gen_range(-2.5..-0.3));
                let sel = if key_dims.contains(&dim) {
                    base * 0.1
                } else {
                    base
                };
                DimFilter::range(dim, sel.clamp(1e-4, 0.9))
            })
            .collect();
        templates.push(QueryTemplate::new(&format!("type{t}"), filters));
    }
    let weights: Vec<f64> = (0..templates.len())
        .map(|_| rng.gen_range(0.2..1.0))
        .collect();
    let mut builder = QueryBuilder::new(table, seed ^ 0xB0B);
    builder.workload(
        &format!("random-{seed}"),
        &templates,
        &weights,
        n,
        Some(target_selectivity),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> Table {
        let n = 10_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| (i * 7919) % 10_000).collect(),
            (0..n).map(|i| (i * 104729) % 10_000).collect(),
            (0..n).collect(),
            (0..n).map(|i| i % 97).collect(),
        ])
    }

    #[test]
    fn workloads_differ_by_seed() {
        let t = table();
        let a = random_workload(&t, &[2], 10, 0.001, 1);
        let b = random_workload(&t, &[2], 10, 0.001, 2);
        assert_ne!(a.train, b.train);
    }

    #[test]
    fn queries_have_bounded_dims() {
        let t = table();
        for seed in 0..5 {
            let w = random_workload(&t, &[2], 10, 0.001, seed);
            for q in w.train.iter().chain(&w.test) {
                let k = q.num_filtered();
                assert!((1..=4).contains(&k), "filtered dims {k}");
            }
        }
    }

    #[test]
    fn selectivity_near_target() {
        let t = table();
        let w = random_workload(&t, &[2], 20, 0.001, 3);
        let sel = |q: &flood_store::RangeQuery| {
            (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as f64 / t.len() as f64
        };
        let avg: f64 = w.test.iter().map(sel).sum::<f64>() / w.test.len() as f64;
        assert!(avg < 0.05, "avg selectivity {avg} too far from 0.001");
    }
}
