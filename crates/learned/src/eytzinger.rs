//! A cache-optimized implicit search tree (Eytzinger / BFS layout).
//!
//! The PLM "records the smallest v in each slice and forms a cache-optimized
//! B-Tree over those values" (§5.2). We use the Eytzinger layout: the sorted
//! keys are stored in breadth-first order of an implicit binary tree, so a
//! search touches one cache line per level near the root and needs no
//! pointers.

use serde::{Deserialize, Serialize};

/// Sorted keys in Eytzinger (BFS) order, supporting predecessor queries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Eytzinger {
    /// Keys in BFS order; index 0 unused (1-based tree arithmetic).
    keys: Vec<u64>,
    /// `ranks[i]` = position of `keys[i]` in the original sorted order.
    ranks: Vec<u32>,
    len: usize,
}

impl Eytzinger {
    /// Build from a sorted slice.
    ///
    /// # Panics
    /// Panics in debug builds if `sorted` is not sorted.
    pub fn build(sorted: &[u64]) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let n = sorted.len();
        let mut keys = vec![0u64; n + 1];
        let mut ranks = vec![0u32; n + 1];
        let mut next = 0usize; // next rank in sorted order to place
        fill(sorted, &mut keys, &mut ranks, &mut next, 1);
        Eytzinger {
            keys,
            ranks,
            len: n,
        }
    }

    /// Number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no keys are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Rank (position in sorted order) of the last key `≤ key`, or `None`
    /// if all keys are greater.
    #[inline]
    pub fn predecessor(&self, key: u64) -> Option<usize> {
        let mut i = 1usize;
        let mut best: usize = 0; // 0 = sentinel "none"
        while i <= self.len {
            if self.keys[i] <= key {
                best = i;
                i = 2 * i + 1;
            } else {
                i *= 2;
            }
        }
        if best == 0 {
            None
        } else {
            Some(self.ranks[best] as usize)
        }
    }

    /// Heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.keys.len() * 8 + self.ranks.len() * 4
    }
}

/// In-order traversal of the implicit tree assigns sorted elements to BFS
/// slots: recursing left, placing, recursing right yields the layout.
fn fill(sorted: &[u64], keys: &mut [u64], ranks: &mut [u32], next: &mut usize, node: usize) {
    if node > sorted.len() {
        return;
    }
    fill(sorted, keys, ranks, next, 2 * node);
    keys[node] = sorted[*next];
    ranks[node] = *next as u32;
    *next += 1;
    fill(sorted, keys, ranks, next, 2 * node + 1);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(sorted: &[u64], key: u64) -> Option<usize> {
        let r = sorted.partition_point(|&x| x <= key);
        if r == 0 {
            None
        } else {
            Some(r - 1)
        }
    }

    #[test]
    fn predecessor_matches_binary_search() {
        let sorted: Vec<u64> = vec![3, 7, 7, 10, 15, 15, 15, 22, 100];
        let e = Eytzinger::build(&sorted);
        for key in 0..120 {
            assert_eq!(e.predecessor(key), reference(&sorted, key), "key={key}");
        }
    }

    #[test]
    fn works_across_sizes() {
        for n in [0usize, 1, 2, 3, 7, 8, 9, 100, 1023, 1024, 1025] {
            let sorted: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
            let e = Eytzinger::build(&sorted);
            assert_eq!(e.len(), n);
            for key in [0u64, 1, 2, 3, 4, 50, 3 * n as u64, 3 * n as u64 + 10] {
                assert_eq!(
                    e.predecessor(key),
                    reference(&sorted, key),
                    "n={n} key={key}"
                );
            }
        }
    }

    #[test]
    fn empty() {
        let e = Eytzinger::build(&[]);
        assert!(e.is_empty());
        assert_eq!(e.predecessor(5), None);
    }

    #[test]
    fn all_duplicates() {
        let sorted = vec![9u64; 33];
        let e = Eytzinger::build(&sorted);
        assert_eq!(e.predecessor(8), None);
        // Any occurrence is acceptable for duplicates; ours returns the last.
        assert_eq!(e.predecessor(9), Some(32));
        assert_eq!(e.predecessor(10), Some(32));
    }

    #[test]
    fn max_key() {
        let sorted = vec![1, u64::MAX];
        let e = Eytzinger::build(&sorted);
        assert_eq!(e.predecessor(u64::MAX), Some(1));
        assert_eq!(e.predecessor(u64::MAX - 1), Some(0));
    }
}
