//! Piecewise Linear Model (PLM) over a sorted value list (§5.2).
//!
//! The PLM models the CDF of the sort-dimension values within a cell. It
//! partitions the distinct values into *slices*, each modeled by a linear
//! segment, under two invariants:
//!
//! * **Lower bound**: `P(v) ≤ D(v)` for every stored value `v`, where `D(v)`
//!   is the index of the first occurrence of `v`. Achieved by setting each
//!   segment's slope to the running minimum of `(D(v) − D(v₀)) / (v − v₀)`.
//! * **Average error budget**: within every slice the mean of
//!   `D(v) − P(v)` over all values (duplicates included) stays `≤ δ`.
//!   The greedy builder closes a slice as soon as admitting the next value
//!   would blow the budget.
//!
//! Slice-start keys are indexed with a cache-optimized [`Eytzinger`] layout;
//! mispredictions at query time are rectified with exponential search.
//! δ trades size for speed (Fig 17b); the paper settles on δ = 50.

use crate::eytzinger::Eytzinger;
use crate::search::{exponential_search_lb, exponential_search_ub};
use serde::{Deserialize, Serialize};

/// Default average-error budget (the paper's chosen δ, Fig 17b).
pub const DEFAULT_DELTA: f64 = 50.0;

/// One linear segment: predicts `base_idx + slope · (v − base_key)`.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Segment {
    base_key: u64,
    base_idx: u64,
    slope: f64,
}

impl Segment {
    #[inline]
    fn predict(&self, v: u64) -> f64 {
        self.base_idx as f64 + self.slope * (v.saturating_sub(self.base_key)) as f64
    }
}

/// A piecewise linear CDF model over one cell's sort-dimension values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PiecewiseLinearModel {
    segments: Vec<Segment>,
    index: Eytzinger,
    n: usize,
    delta: f64,
}

impl PiecewiseLinearModel {
    /// Build over `values`, which must be sorted (duplicates allowed).
    ///
    /// # Panics
    /// Panics in debug builds if `values` is unsorted, or if `delta < 0`.
    pub fn build(values: &[u64], delta: f64) -> Self {
        assert!(delta >= 0.0, "delta must be non-negative");
        debug_assert!(values.windows(2).all(|w| w[0] <= w[1]));
        let n = values.len();
        if n == 0 {
            return PiecewiseLinearModel {
                segments: Vec::new(),
                index: Eytzinger::build(&[]),
                n: 0,
                delta,
            };
        }

        // Distinct (key, first_index, count) triples.
        let mut segments = Vec::new();
        let mut seg_keys = Vec::new();

        // Greedy slice state.
        let mut base_key = values[0];
        let mut base_idx = 0u64;
        let mut slope = f64::INFINITY; // no second distinct key yet
                                       // Running sums over the open slice, duplicate-weighted:
                                       //   s_i = Σ cnt·(D(v) − base_idx),  s_k = Σ cnt·(v − base_key)
        let mut s_i = 0.0f64;
        let mut s_k = 0.0f64;
        let mut m = 0.0f64; // number of values (incl. duplicates) in slice

        let close = |segments: &mut Vec<Segment>,
                     seg_keys: &mut Vec<u64>,
                     base_key: u64,
                     base_idx: u64,
                     slope: f64| {
            segments.push(Segment {
                base_key,
                base_idx,
                slope: if slope.is_finite() { slope } else { 0.0 },
            });
            seg_keys.push(base_key);
        };

        let mut i = 0usize;
        while i < n {
            let key = values[i];
            let first = i as u64;
            let mut cnt = 1usize;
            while i + cnt < n && values[i + cnt] == key {
                cnt += 1;
            }
            i += cnt;

            if key == base_key {
                // The slice's base value: zero error by construction.
                m += cnt as f64;
                continue;
            }

            // Candidate slope must keep the lower-bound property for every
            // point in the slice: running minimum of the secant slopes.
            let secant = (first - base_idx) as f64 / (key - base_key) as f64;
            let cand_slope = slope.min(secant);
            let cand_si = s_i + cnt as f64 * (first - base_idx) as f64;
            let cand_sk = s_k + cnt as f64 * (key - base_key) as f64;
            let cand_m = m + cnt as f64;
            // Mean error with the candidate slope (lower bound ⇒ all errors
            // are non-negative, so the sum telescopes):
            let err = cand_si - cand_slope * cand_sk;
            if err / cand_m > delta {
                // Close current slice; start fresh at this key.
                close(&mut segments, &mut seg_keys, base_key, base_idx, slope);
                base_key = key;
                base_idx = first;
                slope = f64::INFINITY;
                s_i = 0.0;
                s_k = 0.0;
                m = cnt as f64;
            } else {
                slope = cand_slope;
                s_i = cand_si;
                s_k = cand_sk;
                m = cand_m;
            }
        }
        close(&mut segments, &mut seg_keys, base_key, base_idx, slope);

        PiecewiseLinearModel {
            index: Eytzinger::build(&seg_keys),
            segments,
            n,
            delta,
        }
    }

    /// Build with the paper's default δ = 50.
    pub fn build_default(values: &[u64]) -> Self {
        Self::build(values, DEFAULT_DELTA)
    }

    /// Number of values modeled.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when built over no values.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of linear segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The δ this model was built with.
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// Predicted index of the first occurrence of `v`, clamped to `[0, n)`.
    /// A lower bound for stored values; a hint elsewhere.
    #[inline]
    pub fn predict(&self, v: u64) -> usize {
        if self.n == 0 {
            return 0;
        }
        match self.index.predecessor(v) {
            None => 0, // v precedes every stored value
            Some(rank) => {
                let seg = &self.segments[rank];
                (seg.predict(v) as usize).min(self.n - 1)
            }
        }
    }

    /// Exact first index with `get(i) >= v` (refinement start point I₁),
    /// rectified by exponential search against the actual storage.
    #[inline]
    pub fn lookup_lb(&self, v: u64, get: impl Fn(usize) -> u64) -> usize {
        exponential_search_lb(self.n, self.predict(v), v, get)
    }

    /// Exact one-past-last index with `get(i) <= v` (refinement end I₂ + 1).
    #[inline]
    pub fn lookup_ub(&self, v: u64, get: impl Fn(usize) -> u64) -> usize {
        exponential_search_ub(self.n, self.predict(v), v, get)
    }

    /// Approximate heap size in bytes (segments + Eytzinger index).
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.segments.len() * std::mem::size_of::<Segment>()
            + self.index.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// First-occurrence index of each distinct value.
    fn d_of(values: &[u64]) -> Vec<(u64, usize)> {
        let mut out = Vec::new();
        for (i, &v) in values.iter().enumerate() {
            if out.last().map(|&(k, _)| k) != Some(v) {
                out.push((v, i));
            }
        }
        out
    }

    fn check_invariants(values: &[u64], delta: f64) {
        let plm = PiecewiseLinearModel::build(values, delta);
        // Lower-bound property on every stored distinct value.
        let mut total_err = 0.0;
        for &(v, d) in &d_of(values) {
            let p = plm.predict(v);
            assert!(p <= d, "P({v})={p} > D({v})={d}");
            total_err += (d - p) as f64;
        }
        // Global mean error across values is within a small factor of δ
        // (the builder bounds each slice's duplicate-weighted mean by δ).
        if !values.is_empty() {
            let mean = total_err / values.len() as f64;
            assert!(
                mean <= delta * 2.0 + 1.0,
                "mean error {mean} far exceeds delta {delta}"
            );
        }
    }

    #[test]
    fn invariants_uniform() {
        let values: Vec<u64> = (0..10_000u64).map(|i| i * 3).collect();
        check_invariants(&values, 50.0);
    }

    #[test]
    fn invariants_skewed() {
        let mut values: Vec<u64> = (0..10_000u64).map(|i| (i * i * 31) % 100_000).collect();
        values.sort_unstable();
        check_invariants(&values, 50.0);
        check_invariants(&values, 5.0);
        check_invariants(&values, 500.0);
    }

    #[test]
    fn invariants_heavy_duplicates() {
        let mut values = Vec::new();
        for v in 0..100u64 {
            values.extend(std::iter::repeat_n(v * 7, (v % 13 + 1) as usize * 10));
        }
        check_invariants(&values, 20.0);
    }

    #[test]
    fn lookups_are_exact() {
        let mut values: Vec<u64> = (0..5_000u64).map(|i| (i * 2654435761) % 100_000).collect();
        values.sort_unstable();
        let plm = PiecewiseLinearModel::build(&values, 50.0);
        for probe in (0..100_100u64).step_by(977) {
            assert_eq!(
                plm.lookup_lb(probe, |i| values[i]),
                values.partition_point(|&x| x < probe),
                "lb {probe}"
            );
            assert_eq!(
                plm.lookup_ub(probe, |i| values[i]),
                values.partition_point(|&x| x <= probe),
                "ub {probe}"
            );
        }
    }

    #[test]
    fn smaller_delta_more_segments() {
        let mut values: Vec<u64> = (0..20_000u64).map(|i| (i * i) % 1_000_000).collect();
        values.sort_unstable();
        let coarse = PiecewiseLinearModel::build(&values, 200.0);
        let fine = PiecewiseLinearModel::build(&values, 2.0);
        assert!(
            fine.num_segments() > coarse.num_segments(),
            "fine {} vs coarse {}",
            fine.num_segments(),
            coarse.num_segments()
        );
        assert!(fine.size_bytes() > coarse.size_bytes());
    }

    #[test]
    fn delta_zero_is_exact_on_distinct_keys() {
        let values: Vec<u64> = (0..500u64).map(|i| i * 11 + (i % 3)).collect();
        let plm = PiecewiseLinearModel::build(&values, 0.0);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(plm.predict(v), i, "value {v}");
        }
    }

    #[test]
    fn empty_and_single() {
        let plm = PiecewiseLinearModel::build(&[], 50.0);
        assert_eq!(plm.predict(10), 0);
        assert_eq!(plm.lookup_lb(10, |_| unreachable!()), 0);
        let one = [42u64];
        let plm = PiecewiseLinearModel::build(&one, 50.0);
        assert_eq!(plm.lookup_lb(42, |i| one[i]), 0);
        assert_eq!(plm.lookup_ub(42, |i| one[i]), 1);
        assert_eq!(plm.lookup_lb(43, |i| one[i]), 1);
    }

    #[test]
    fn constant_values() {
        let values = vec![7u64; 1000];
        let plm = PiecewiseLinearModel::build(&values, 50.0);
        assert_eq!(plm.num_segments(), 1);
        assert_eq!(plm.lookup_lb(7, |i| values[i]), 0);
        assert_eq!(plm.lookup_ub(7, |i| values[i]), 1000);
    }

    #[test]
    fn linear_data_compresses_to_one_segment() {
        let values: Vec<u64> = (0..10_000u64).map(|i| i * 5).collect();
        let plm = PiecewiseLinearModel::build(&values, 1.0);
        // Perfectly linear data should need exactly one segment even at a
        // tight budget.
        assert_eq!(plm.num_segments(), 1);
    }
}
