//! Recursive Model Index (RMI) over a sorted key set.
//!
//! A two-layer RMI: the root is a monotone linear spline that routes a key to
//! one of `B` leaf models; each leaf is a least-squares linear model over the
//! keys routed to it (Appendix A: "Models in the non-leaf layers are linear
//! spline models to ensure that the models accessed in the following layer
//! are monotonic; the models in the leaf layer are linear regressions").
//!
//! Flood uses RMIs as per-attribute CDF models for flattening (§5.1), which
//! requires the prediction to be **globally monotone** in the key — otherwise
//! a point inside a query range could be assigned a grid column outside the
//! projected range. Monotonicity is guaranteed by construction:
//!
//! 1. the root spline is monotone, so leaf assignment is monotone;
//! 2. leaf slopes are clamped non-negative;
//! 3. each leaf's output is clamped to its position range
//!    `[pos_lo, pos_hi]`, and the ranges of successive leaves are
//!    non-overlapping and increasing.

use crate::cdf::CdfModel;
use crate::linear::{LinearModel, LinearSpline};
use crate::search::{exponential_search_lb, exponential_search_ub};
use serde::{Deserialize, Serialize};

/// Configuration for [`Rmi::build`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RmiConfig {
    /// Number of leaf models; `None` chooses `√n` clamped to `[8, 65536]`.
    pub branching: Option<usize>,
    /// Number of root-spline knots (equi-depth samples of the key set).
    pub root_knots: usize,
}

impl Default for RmiConfig {
    fn default() -> Self {
        RmiConfig {
            branching: None,
            root_knots: 256,
        }
    }
}

/// One leaf model with its clamp range and observed error bound.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Leaf {
    model: LinearModel,
    /// Smallest position of a key routed here (clamp floor).
    pos_lo: f64,
    /// One past the largest position of a key routed here (clamp ceiling).
    pos_hi: f64,
    /// Max |prediction − true position| over training keys in this leaf.
    max_err: u32,
}

/// A two-layer recursive model index over `n` sorted keys.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Rmi {
    root: LinearSpline,
    leaves: Vec<Leaf>,
    n: usize,
}

impl Rmi {
    /// Build an RMI over `keys`, which must be sorted (duplicates allowed).
    ///
    /// # Panics
    /// Panics in debug builds if `keys` is unsorted.
    pub fn build(keys: &[u64], cfg: RmiConfig) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "keys must be sorted");
        let n = keys.len();
        if n == 0 {
            return Rmi {
                root: LinearSpline::new(vec![0.0], vec![0.0]),
                leaves: vec![Leaf {
                    model: LinearModel {
                        slope: 0.0,
                        intercept: 0.0,
                    },
                    pos_lo: 0.0,
                    pos_hi: 0.0,
                    max_err: 0,
                }],
                n: 0,
            };
        }
        let branching = cfg
            .branching
            .unwrap_or_else(|| ((n as f64).sqrt() as usize).clamp(8, 65_536));
        let root = build_root(keys, branching, cfg.root_knots);

        // Route every key through the root; keys per leaf are contiguous
        // because the root is monotone.
        let mut leaves = Vec::with_capacity(branching);
        let mut start = 0usize;
        let mut next_lo = 0f64;
        for leaf_idx in 0..branching {
            // End of this leaf's key range: first key routed past leaf_idx.
            let end = if leaf_idx + 1 == branching {
                n
            } else {
                // Keys are sorted and routing is monotone: binary search for
                // the first position whose routed leaf exceeds leaf_idx.
                partition_by(keys, start, |k| route(&root, branching, k) <= leaf_idx)
            };
            let leaf = fit_leaf(keys, start, end, next_lo);
            next_lo = leaf.pos_hi;
            leaves.push(leaf);
            start = end;
        }
        Rmi { root, leaves, n }
    }

    /// Number of keys the model was trained on.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when trained on no keys.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of leaf models.
    pub fn num_leaves(&self) -> usize {
        self.leaves.len()
    }

    /// Predicted position of `key` in the sorted key set, in `[0, n]`.
    /// Monotone in `key`.
    #[inline]
    pub fn predict(&self, key: u64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let leaf = &self.leaves[route(&self.root, self.leaves.len(), key)];
        leaf.model
            .predict(key as f64)
            .clamp(leaf.pos_lo, leaf.pos_hi)
    }

    /// Predicted position plus the leaf's observed max training error.
    #[inline]
    pub fn predict_with_err(&self, key: u64) -> (usize, u32) {
        if self.n == 0 {
            return (0, 0);
        }
        let li = route(&self.root, self.leaves.len(), key);
        let leaf = &self.leaves[li];
        let p = leaf
            .model
            .predict(key as f64)
            .clamp(leaf.pos_lo, leaf.pos_hi);
        (p as usize, leaf.max_err)
    }

    /// Largest max-error across leaves (diagnostic, Fig 17 comparisons).
    pub fn max_error(&self) -> u32 {
        self.leaves.iter().map(|l| l.max_err).max().unwrap_or(0)
    }

    /// First index `i` with `get(i) >= key`, where `get` reads the *same
    /// sorted sequence* the model was built on. Rectifies the model's guess
    /// with exponential search.
    pub fn lookup_lb(&self, key: u64, get: impl Fn(usize) -> u64) -> usize {
        exponential_search_lb(self.n, self.predict(key) as usize, key, get)
    }

    /// One past the last index with `get(i) <= key`.
    pub fn lookup_ub(&self, key: u64, get: impl Fn(usize) -> u64) -> usize {
        exponential_search_ub(self.n, self.predict(key) as usize, key, get)
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.leaves.len() * std::mem::size_of::<Leaf>()
            + self.root.len() * 16
    }
}

impl CdfModel for Rmi {
    fn cdf(&self, v: u64) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        (self.predict(v) / self.n as f64).clamp(0.0, 1.0)
    }

    fn quantile(&self, q: f64) -> u64 {
        // Invert by binary search over the key domain (monotone cdf).
        let (mut lo, mut hi) = (0u64, u64::MAX);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid) < q {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }
}

/// Route a key to a leaf index via the root spline.
#[inline]
fn route(root: &LinearSpline, branching: usize, key: u64) -> usize {
    (root.predict(key as f64) as usize).min(branching - 1)
}

/// Build the monotone root spline: equi-depth knots mapping key → leaf index.
fn build_root(keys: &[u64], branching: usize, knots: usize) -> LinearSpline {
    let n = keys.len();
    let k = knots.clamp(2, n.max(2));
    let mut xs = Vec::with_capacity(k);
    let mut ys = Vec::with_capacity(k);
    for i in 0..k {
        let pos = if k == 1 { 0 } else { i * (n - 1) / (k - 1) };
        let x = keys[pos] as f64;
        let y = pos as f64 / n as f64 * branching as f64;
        // Collapse duplicate keys to the largest y (keeps x strictly grouped
        // and y monotone).
        if let Some(&last_x) = xs.last() {
            if last_x == x {
                *ys.last_mut().expect("non-empty") = y;
                continue;
            }
        }
        xs.push(x);
        ys.push(y);
    }
    LinearSpline::new(xs, ys)
}

/// Fit one leaf over `keys[start..end]`; `floor_lo` is the previous leaf's
/// `pos_hi`, guaranteeing non-overlapping increasing clamp ranges.
fn fit_leaf(keys: &[u64], start: usize, end: usize, floor_lo: f64) -> Leaf {
    if start >= end {
        return Leaf {
            model: LinearModel {
                slope: 0.0,
                intercept: floor_lo,
            },
            pos_lo: floor_lo,
            pos_hi: floor_lo,
            max_err: 0,
        };
    }
    let xs: Vec<f64> = keys[start..end].iter().map(|&k| k as f64).collect();
    let ys: Vec<f64> = (start..end).map(|i| i as f64).collect();
    let model = LinearModel::fit_monotone(&xs, &ys);
    let pos_lo = start as f64;
    let pos_hi = end as f64;
    let mut max_err = 0u32;
    for (x, y) in xs.iter().zip(&ys) {
        let p = model.predict(*x).clamp(pos_lo, pos_hi);
        let e = (p - y).abs().ceil() as u32;
        max_err = max_err.max(e);
    }
    Leaf {
        model,
        pos_lo,
        pos_hi,
        max_err,
    }
}

/// First index `i >= from` where `pred(keys[i])` is false.
fn partition_by(keys: &[u64], from: usize, pred: impl Fn(u64) -> bool) -> usize {
    let (mut lo, mut hi) = (from, keys.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(keys[mid]) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(n: usize) -> Vec<u64> {
        (0..n as u64).map(|i| i * 7).collect()
    }

    fn skewed(n: usize) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n as u64).map(|i| (i * i) % 1_000_003).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn predicts_positions_on_uniform_keys() {
        let keys = uniform(10_000);
        let rmi = Rmi::build(&keys, RmiConfig::default());
        for (i, &k) in keys.iter().enumerate().step_by(97) {
            let p = rmi.predict(k);
            assert!(
                (p - i as f64).abs() <= 64.0,
                "key {k}: predicted {p}, true {i}"
            );
        }
    }

    #[test]
    fn lookup_is_exact_via_rectification() {
        for keys in [uniform(5_000), skewed(5_000)] {
            let rmi = Rmi::build(&keys, RmiConfig::default());
            for probe in (0..1_000_100).step_by(1009) {
                let lb = rmi.lookup_lb(probe, |i| keys[i]);
                assert_eq!(lb, keys.partition_point(|&x| x < probe), "probe {probe}");
                let ub = rmi.lookup_ub(probe, |i| keys[i]);
                assert_eq!(ub, keys.partition_point(|&x| x <= probe), "probe {probe}");
            }
        }
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let keys = skewed(20_000);
        let rmi = Rmi::build(&keys, RmiConfig::default());
        let mut prev = -1.0;
        for v in (0..1_000_003u64).step_by(499) {
            let c = rmi.cdf(v);
            assert!((0.0..=1.0).contains(&c), "cdf out of range: {c}");
            assert!(c >= prev, "cdf not monotone at {v}: {c} < {prev}");
            prev = c;
        }
    }

    #[test]
    fn cdf_close_to_empirical() {
        use crate::cdf::EmpiricalCdf;
        let keys = skewed(50_000);
        let rmi = Rmi::build(&keys, RmiConfig::default());
        let emp = EmpiricalCdf::from_sorted(keys.clone());
        for v in (0..1_000_003u64).step_by(10_007) {
            let d = (rmi.cdf(v) - emp.cdf(v)).abs();
            assert!(d < 0.02, "cdf error {d} at {v}");
        }
    }

    #[test]
    fn handles_heavy_duplicates() {
        let mut keys = vec![5u64; 1000];
        keys.extend(vec![9u64; 1000]);
        keys.extend((10..1010).map(|i| i as u64));
        keys.sort_unstable();
        let rmi = Rmi::build(&keys, RmiConfig::default());
        assert_eq!(rmi.lookup_lb(5, |i| keys[i]), 0);
        assert_eq!(rmi.lookup_ub(5, |i| keys[i]), 1000);
        assert_eq!(rmi.lookup_lb(9, |i| keys[i]), 1000);
        assert_eq!(rmi.lookup_ub(9, |i| keys[i]), 2000);
    }

    #[test]
    fn empty_and_single() {
        let rmi = Rmi::build(&[], RmiConfig::default());
        assert_eq!(rmi.predict(42), 0.0);
        assert_eq!(rmi.cdf(42), 0.0);
        let rmi = Rmi::build(&[7], RmiConfig::default());
        assert_eq!(rmi.lookup_lb(7, |_| 7), 0);
        assert_eq!(rmi.lookup_ub(7, |_| 7), 1);
        assert_eq!(rmi.lookup_lb(8, |_| 7), 1);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let keys = uniform(10_000);
        let rmi = Rmi::build(&keys, RmiConfig::default());
        let q50 = rmi.quantile(0.5);
        let want = keys[keys.len() / 2];
        let tolerance = 7 * 200; // a few positions of slack, in key units
        assert!(
            (q50 as i64 - want as i64).unsigned_abs() <= tolerance,
            "q50={q50}, want≈{want}"
        );
    }

    #[test]
    fn constant_keys() {
        let keys = vec![3u64; 500];
        let rmi = Rmi::build(&keys, RmiConfig::default());
        assert_eq!(rmi.lookup_lb(3, |i| keys[i]), 0);
        assert_eq!(rmi.lookup_ub(3, |i| keys[i]), 500);
        assert_eq!(rmi.lookup_lb(4, |i| keys[i]), 500);
        assert_eq!(rmi.lookup_ub(2, |i| keys[i]), 0);
    }
}
