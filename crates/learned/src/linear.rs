//! Linear building blocks: 1-D least squares, monotone linear splines, and
//! multivariate OLS (used by the cost-model ablation in §4.1.2).

use serde::{Deserialize, Serialize};

/// A 1-D linear model `y = slope * x + intercept` fit by least squares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Slope of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line.
    pub intercept: f64,
}

impl LinearModel {
    /// Least-squares fit over `(x, y)` pairs. Degenerate inputs (all-equal
    /// x, or fewer than 2 points) fall back to a constant model at the mean.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len());
        let n = xs.len() as f64;
        if xs.is_empty() {
            return LinearModel {
                slope: 0.0,
                intercept: 0.0,
            };
        }
        let mean_x = xs.iter().sum::<f64>() / n;
        let mean_y = ys.iter().sum::<f64>() / n;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        for (&x, &y) in xs.iter().zip(ys) {
            sxx += (x - mean_x) * (x - mean_x);
            sxy += (x - mean_x) * (y - mean_y);
        }
        if sxx <= f64::EPSILON {
            return LinearModel {
                slope: 0.0,
                intercept: mean_y,
            };
        }
        let slope = sxy / sxx;
        LinearModel {
            slope,
            intercept: mean_y - slope * mean_x,
        }
    }

    /// A monotone (non-negative slope) fit: like [`LinearModel::fit`] but the
    /// slope is clamped at zero, preserving weak monotonicity for CDF use.
    pub fn fit_monotone(xs: &[f64], ys: &[f64]) -> Self {
        let mut m = Self::fit(xs, ys);
        if m.slope < 0.0 {
            let n = ys.len() as f64;
            m.slope = 0.0;
            m.intercept = if ys.is_empty() {
                0.0
            } else {
                ys.iter().sum::<f64>() / n
            };
        }
        m
    }

    /// Evaluate the model at `x`.
    #[inline]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// A monotone linear spline through a fixed set of `(x, y)` knots, used as
/// the RMI root model (the paper's non-leaf layers are "linear spline models
/// to ensure that the models accessed in the following layer are monotonic",
/// Appendix A).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinearSpline {
    knots_x: Vec<f64>,
    knots_y: Vec<f64>,
}

impl LinearSpline {
    /// Build a spline from knots sorted by x with non-decreasing y.
    ///
    /// # Panics
    /// Panics if the knot sequence is unsorted in x or decreasing in y.
    pub fn new(knots_x: Vec<f64>, knots_y: Vec<f64>) -> Self {
        assert_eq!(knots_x.len(), knots_y.len());
        assert!(!knots_x.is_empty(), "spline needs at least one knot");
        for w in knots_x.windows(2) {
            assert!(w[0] <= w[1], "spline knots must be sorted in x");
        }
        for w in knots_y.windows(2) {
            assert!(w[0] <= w[1], "spline knot values must be non-decreasing");
        }
        LinearSpline { knots_x, knots_y }
    }

    /// Evaluate with linear interpolation; clamps outside the knot range.
    pub fn predict(&self, x: f64) -> f64 {
        let n = self.knots_x.len();
        if x <= self.knots_x[0] {
            return self.knots_y[0];
        }
        if x >= self.knots_x[n - 1] {
            return self.knots_y[n - 1];
        }
        // First knot strictly greater than x.
        let hi = self.knots_x.partition_point(|&k| k <= x);
        let lo = hi - 1;
        let (x0, x1) = (self.knots_x[lo], self.knots_x[hi]);
        let (y0, y1) = (self.knots_y[lo], self.knots_y[hi]);
        if x1 <= x0 {
            return y0;
        }
        y0 + (y1 - y0) * (x - x0) / (x1 - x0)
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.knots_x.len()
    }

    /// True when the spline has no knots (never constructible).
    pub fn is_empty(&self) -> bool {
        self.knots_x.is_empty()
    }
}

/// Multivariate linear regression fit by ordinary least squares via normal
/// equations (features are few — ≤ a dozen cost-model statistics).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiLinearModel {
    /// Per-feature coefficients.
    pub coefficients: Vec<f64>,
    /// Intercept term.
    pub intercept: f64,
}

impl MultiLinearModel {
    /// Fit `y ≈ X·β + b`. Uses ridge-stabilized normal equations
    /// (λ = 1e-9) solved by Gaussian elimination with partial pivoting.
    ///
    /// # Panics
    /// Panics when rows have inconsistent widths or `xs.len() != ys.len()`.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Self {
        assert_eq!(xs.len(), ys.len());
        if xs.is_empty() {
            return MultiLinearModel {
                coefficients: Vec::new(),
                intercept: 0.0,
            };
        }
        let d = xs[0].len();
        for row in xs {
            assert_eq!(row.len(), d, "inconsistent feature width");
        }
        // Augmented design: [x, 1] to absorb the intercept.
        let m = d + 1;
        let mut ata = vec![vec![0.0f64; m]; m];
        let mut atb = vec![0.0f64; m];
        for (row, &y) in xs.iter().zip(ys) {
            for i in 0..m {
                let xi = if i < d { row[i] } else { 1.0 };
                atb[i] += xi * y;
                for j in 0..m {
                    let xj = if j < d { row[j] } else { 1.0 };
                    ata[i][j] += xi * xj;
                }
            }
        }
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += 1e-9; // ridge stabilizer for singular designs
        }
        let beta = solve(&mut ata, &mut atb);
        MultiLinearModel {
            coefficients: beta[..d].to_vec(),
            intercept: beta[d],
        }
    }

    /// Evaluate at feature vector `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.coefficients.len());
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(x)
                .map(|(c, v)| c * v)
                .sum::<f64>()
    }
}

/// Solve `A·x = b` in place with partial pivoting; returns `x`.
fn solve(a: &mut [Vec<f64>], b: &mut [f64]) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let piv = (col..n)
            .max_by(|&i, &j| a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap())
            .unwrap();
        a.swap(col, piv);
        b.swap(col, piv);
        let diag = a[col][col];
        if diag.abs() < 1e-30 {
            continue; // singular direction; ridge term usually prevents this
        }
        let (pivot_rows, rest) = a.split_at_mut(col + 1);
        let pivot = &pivot_rows[col];
        let b_col = b[col];
        for (off, row_vec) in rest.iter_mut().enumerate() {
            let f = row_vec[col] / diag;
            if f == 0.0 {
                continue;
            }
            for (rv, &pv) in row_vec[col..].iter_mut().zip(&pivot[col..]) {
                *rv -= f * pv;
            }
            b[col + 1 + off] -= f * b_col;
        }
    }
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for k in col + 1..n {
            acc -= a[col][k] * x[k];
        }
        x[col] = if a[col][col].abs() < 1e-30 {
            0.0
        } else {
            acc / a[col][col]
        };
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_exact_line() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x + 2.0).collect();
        let m = LinearModel::fit(&xs, &ys);
        assert!((m.slope - 3.0).abs() < 1e-9);
        assert!((m.intercept - 2.0).abs() < 1e-9);
        assert!((m.predict(100.0) - 302.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate_x() {
        let m = LinearModel::fit(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]);
        assert_eq!(m.slope, 0.0);
        assert!((m.intercept - 2.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_fit_clamps_negative_slope() {
        let m = LinearModel::fit_monotone(&[0.0, 1.0, 2.0], &[10.0, 5.0, 0.0]);
        assert_eq!(m.slope, 0.0);
        assert!((m.intercept - 5.0).abs() < 1e-9);
    }

    #[test]
    fn spline_interpolates_and_clamps() {
        let s = LinearSpline::new(vec![0.0, 10.0, 20.0], vec![0.0, 100.0, 110.0]);
        assert_eq!(s.predict(-5.0), 0.0);
        assert_eq!(s.predict(25.0), 110.0);
        assert!((s.predict(5.0) - 50.0).abs() < 1e-9);
        assert!((s.predict(15.0) - 105.0).abs() < 1e-9);
    }

    #[test]
    fn spline_is_monotone() {
        let s = LinearSpline::new(vec![0.0, 1.0, 1.0, 3.0], vec![0.0, 2.0, 2.0, 9.0]);
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=300 {
            let y = s.predict(i as f64 * 0.01);
            assert!(y >= prev);
            prev = y;
        }
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn spline_rejects_decreasing_y() {
        let _ = LinearSpline::new(vec![0.0, 1.0], vec![1.0, 0.0]);
    }

    #[test]
    fn multilinear_recovers_plane() {
        // y = 2a - 3b + 7
        let xs: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![(i % 7) as f64, (i % 11) as f64])
            .collect();
        let ys: Vec<f64> = xs.iter().map(|r| 2.0 * r[0] - 3.0 * r[1] + 7.0).collect();
        let m = MultiLinearModel::fit(&xs, &ys);
        assert!((m.coefficients[0] - 2.0).abs() < 1e-6);
        assert!((m.coefficients[1] + 3.0).abs() < 1e-6);
        assert!((m.intercept - 7.0).abs() < 1e-6);
        assert!((m.predict(&[1.0, 1.0]) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn multilinear_handles_collinear_features() {
        // Second feature duplicates the first: ridge keeps this solvable.
        let xs: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64, i as f64]).collect();
        let ys: Vec<f64> = (0..20).map(|i| 4.0 * i as f64).collect();
        let m = MultiLinearModel::fit(&xs, &ys);
        for (i, x) in xs.iter().enumerate() {
            assert!((m.predict(x) - ys[i]).abs() < 1e-3);
        }
    }
}
