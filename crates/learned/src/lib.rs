//! # flood-learned
//!
//! The learned-model zoo that the Flood index is assembled from:
//!
//! * [`rmi`] — Recursive Model Index (Kraska et al., SIGMOD 2018): a two-layer
//!   hierarchy of linear models over a sorted key set. Flood uses RMIs as
//!   per-attribute CDF models for *flattening* (§5.1) and the clustered
//!   single-dimensional baseline uses one as its primary index (§7.2).
//! * [`plm`] — Piecewise Linear Model (§5.2): greedy lower-bound segments with
//!   an average-error budget δ, used as the per-cell CDF model over the sort
//!   dimension.
//! * [`eytzinger`] — a cache-optimized implicit search tree over segment
//!   boundary keys (the paper's "cache-optimized B-Tree over those values").
//! * [`cdf`] — empirical CDFs and the [`cdf::CdfModel`] abstraction shared by
//!   flattening implementations.
//! * [`linear`] — ordinary least squares (1-D and multivariate), linear
//!   splines; building blocks for the RMI and the cost-model ablations.
//! * [`forest`] — a from-scratch CART random-forest regressor; the paper
//!   trains its cost-model weights with SciPy's random forest (§4.1.1), we
//!   reproduce the model class natively.
//! * [`search`] — exponential (galloping) search used to rectify model
//!   mispredictions.

pub mod cdf;
pub mod eytzinger;
pub mod forest;
pub mod linear;
pub mod plm;
pub mod rmi;
pub mod search;

pub use cdf::{CdfModel, EmpiricalCdf};
pub use eytzinger::Eytzinger;
pub use forest::{RandomForest, RandomForestConfig};
pub use linear::{LinearModel, LinearSpline, MultiLinearModel};
pub use plm::PiecewiseLinearModel;
pub use rmi::Rmi;
pub use search::{exponential_search_lb, exponential_search_ub};
