//! Exponential (galloping) search used to rectify model mispredictions.
//!
//! A learned model predicts an approximate position; when the prediction is
//! off, the true position is found by doubling steps outward from the guess
//! and then binary-searching the bracketed range. Cost is O(log error), so
//! accurate models pay almost nothing (§5.2, §7.8 "inference and an
//! exponential search rectification phase").

/// First index `i` in the sorted access sequence with `get(i) >= key`
/// (lower bound), starting from the hint `guess`. Returns `len` when all
/// values are `< key`.
///
/// `get` must be monotone non-decreasing over `0..len`.
pub fn exponential_search_lb(
    len: usize,
    guess: usize,
    key: u64,
    get: impl Fn(usize) -> u64,
) -> usize {
    if len == 0 {
        return 0;
    }
    let mut lo;
    let hi;
    let g = guess.min(len - 1);
    if get(g) >= key {
        // True position is at or before g: gallop left.
        let mut step = 1usize;
        hi = g;
        loop {
            if step > hi {
                lo = 0;
                break;
            }
            let probe = hi - step;
            if get(probe) < key {
                lo = probe + 1;
                break;
            }
            step <<= 1;
        }
        // Invariant: get(lo-1) < key (or lo == 0), get(hi) >= key.
        partition_point(lo, hi + 1, |i| get(i) < key)
    } else {
        // True position is after g: gallop right.
        let mut step = 1usize;
        lo = g + 1;
        loop {
            let probe = g + step;
            if probe >= len {
                hi = len;
                break;
            }
            if get(probe) >= key {
                hi = probe;
                break;
            }
            lo = probe + 1;
            step <<= 1;
        }
        partition_point(lo, hi, |i| get(i) < key)
    }
}

/// One past the last index with `get(i) <= key` (upper bound), starting from
/// the hint `guess`. Returns 0 when all values are `> key`.
pub fn exponential_search_ub(
    len: usize,
    guess: usize,
    key: u64,
    get: impl Fn(usize) -> u64,
) -> usize {
    if key == u64::MAX {
        return len;
    }
    exponential_search_lb(len, guess, key + 1, get)
}

/// Binary search: first index in `[lo, hi)` where `pred` is false.
/// `pred` must be monotone (true-prefix, false-suffix).
fn partition_point(mut lo: usize, mut hi: usize, pred: impl Fn(usize) -> bool) -> usize {
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lb_ref(v: &[u64], key: u64) -> usize {
        v.partition_point(|&x| x < key)
    }

    fn ub_ref(v: &[u64], key: u64) -> usize {
        v.partition_point(|&x| x <= key)
    }

    #[test]
    fn matches_std_partition_point_all_guesses() {
        let v: Vec<u64> = vec![2, 4, 4, 4, 9, 15, 15, 20];
        for key in 0..25 {
            for guess in 0..v.len() + 2 {
                assert_eq!(
                    exponential_search_lb(v.len(), guess, key, |i| v[i]),
                    lb_ref(&v, key),
                    "lb key={key} guess={guess}"
                );
                assert_eq!(
                    exponential_search_ub(v.len(), guess, key, |i| v[i]),
                    ub_ref(&v, key),
                    "ub key={key} guess={guess}"
                );
            }
        }
    }

    #[test]
    fn empty_input() {
        assert_eq!(exponential_search_lb(0, 0, 5, |_| 0), 0);
        assert_eq!(exponential_search_ub(0, 0, 5, |_| 0), 0);
    }

    #[test]
    fn max_key_upper_bound() {
        let v = [1, 2, u64::MAX];
        assert_eq!(exponential_search_ub(v.len(), 0, u64::MAX, |i| v[i]), 3);
        assert_eq!(exponential_search_lb(v.len(), 0, u64::MAX, |i| v[i]), 2);
    }

    #[test]
    fn large_array_far_guess() {
        let v: Vec<u64> = (0..10_000).map(|i| i * 3).collect();
        // Guess far from the true position on both sides.
        assert_eq!(exponential_search_lb(v.len(), 9_999, 30, |i| v[i]), 10);
        assert_eq!(exponential_search_lb(v.len(), 0, 29_700, |i| v[i]), 9_900);
    }
}
