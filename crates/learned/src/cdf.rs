//! CDF models: the abstraction behind *flattening* (§5.1).
//!
//! A CDF model maps an attribute value `v` to the fraction of points with
//! values `≤ v`. Flattening places a point with value `v` into column
//! `⌊CDF(v) · n⌋`, so each column carries roughly equal mass regardless of
//! skew. Any model used for partitioning MUST be monotone — otherwise a
//! point inside a query range could land outside the projected column range.

use serde::{Deserialize, Serialize};

/// A monotone map from attribute values to `[0, 1]`.
pub trait CdfModel {
    /// Estimated fraction of points with value `≤ v`, in `[0, 1]`.
    fn cdf(&self, v: u64) -> f64;

    /// Column assignment for flattening: `⌊cdf(v) · n⌋`, clamped to `n - 1`.
    fn bucket(&self, v: u64, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.cdf(v) * n as f64) as usize).min(n - 1)
    }

    /// Approximate inverse: smallest value whose CDF reaches `q`.
    /// Used to report column boundaries for diagnostics.
    fn quantile(&self, q: f64) -> u64;
}

/// An exact empirical CDF over a (sorted copy of a) value set.
///
/// This is the reference model: `cdf(v) = |{x : x ≤ v}| / N`. The RMI
/// approximates this function; tests compare against it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<u64>,
}

impl EmpiricalCdf {
    /// Build from any value sequence (copied and sorted).
    pub fn build(values: &[u64]) -> Self {
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        EmpiricalCdf { sorted }
    }

    /// Build from already-sorted values (no copy validation in release).
    pub fn from_sorted(sorted: Vec<u64>) -> Self {
        debug_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        EmpiricalCdf { sorted }
    }

    /// Number of underlying values.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when the CDF was built over no values.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }
}

impl CdfModel for EmpiricalCdf {
    fn cdf(&self, v: u64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let rank = self.sorted.partition_point(|&x| x <= v);
        rank as f64 / self.sorted.len() as f64
    }

    fn quantile(&self, q: f64) -> u64 {
        if self.sorted.is_empty() {
            return 0;
        }
        let idx = ((q * self.sorted.len() as f64) as usize).min(self.sorted.len() - 1);
        self.sorted[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_cdf_basics() {
        let c = EmpiricalCdf::build(&[10, 20, 30, 40]);
        assert_eq!(c.cdf(5), 0.0);
        assert_eq!(c.cdf(10), 0.25);
        assert_eq!(c.cdf(25), 0.5);
        assert_eq!(c.cdf(40), 1.0);
        assert_eq!(c.cdf(u64::MAX), 1.0);
    }

    #[test]
    fn empirical_cdf_duplicates() {
        let c = EmpiricalCdf::build(&[7, 7, 7, 9]);
        assert_eq!(c.cdf(6), 0.0);
        assert_eq!(c.cdf(7), 0.75);
        assert_eq!(c.cdf(8), 0.75);
        assert_eq!(c.cdf(9), 1.0);
    }

    #[test]
    fn bucket_assignment_even_mass() {
        // Skewed data: empirical CDF still spreads mass evenly.
        let mut vals = vec![0u64; 900];
        vals.extend((1..=100).map(|i| i * 1000));
        let c = EmpiricalCdf::build(&vals);
        // Value 0 covers 90% of mass → bucket of 0 in a 10-bucket layout is 8
        // (cdf(0)=0.9 → bucket 9 clamped... cdf(0)=0.9 → floor(9.0)=9) — what
        // matters is that the LAST bucket holds the dominant value and the
        // remaining values spread across the rest.
        assert_eq!(c.bucket(0, 10), 9);
        assert!(c.bucket(1000, 10) >= 9);
    }

    #[test]
    fn bucket_clamps_to_last() {
        let c = EmpiricalCdf::build(&[1, 2, 3]);
        assert_eq!(c.bucket(u64::MAX, 4), 3);
    }

    #[test]
    fn quantiles() {
        let c = EmpiricalCdf::build(&[10, 20, 30, 40]);
        assert_eq!(c.quantile(0.0), 10);
        assert_eq!(c.quantile(0.5), 30);
        assert_eq!(c.quantile(1.0), 40);
    }

    #[test]
    fn empty_cdf() {
        let c = EmpiricalCdf::build(&[]);
        assert_eq!(c.cdf(42), 0.0);
        assert_eq!(c.quantile(0.5), 0);
    }

    #[test]
    fn monotone_on_random_values() {
        let vals: Vec<u64> = (0..1000).map(|i| (i * 2654435761u64) % 100_000).collect();
        let c = EmpiricalCdf::build(&vals);
        let mut prev = -1.0;
        for v in (0..100_000).step_by(997) {
            let y = c.cdf(v);
            assert!(y >= prev);
            prev = y;
        }
    }
}
