//! A single CART regression tree (variance-reduction splits).

use super::RandomForestConfig;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Flat node-array representation of a binary regression tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RegressionTree {
    nodes: Vec<Node>,
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
enum Node {
    /// Internal split: go left when `x[feature] <= threshold`.
    Split {
        feature: u16,
        threshold: f64,
        left: u32,
        right: u32,
    },
    /// Leaf with the mean target of its training samples.
    Leaf { value: f64 },
}

impl RegressionTree {
    /// Fit a tree on the rows of `xs`/`ys` selected by `sample`
    /// (a bootstrap index multiset).
    pub fn fit(
        xs: &[Vec<f64>],
        ys: &[f64],
        sample: &[usize],
        cfg: RandomForestConfig,
        rng: &mut StdRng,
    ) -> Self {
        let mut nodes = Vec::new();
        let mut idx: Vec<usize> = sample.to_vec();
        build(xs, ys, &mut idx, 0, cfg, rng, &mut nodes);
        RegressionTree { nodes }
    }

    /// Predict the target for feature vector `x`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match self.nodes[at] {
                Node::Leaf { value } => return value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if x[feature as usize] <= threshold {
                        left as usize
                    } else {
                        right as usize
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }
}

/// Recursively build the subtree over `idx`; returns the node id.
fn build(
    xs: &[Vec<f64>],
    ys: &[f64],
    idx: &mut [usize],
    depth: usize,
    cfg: RandomForestConfig,
    rng: &mut StdRng,
    nodes: &mut Vec<Node>,
) -> u32 {
    let id = nodes.len() as u32;
    let mean = idx.iter().map(|&i| ys[i]).sum::<f64>() / idx.len() as f64;
    nodes.push(Node::Leaf { value: mean });

    if depth >= cfg.max_depth || idx.len() < 2 * cfg.min_leaf {
        return id;
    }
    let Some((feature, threshold)) = best_split(xs, ys, idx, cfg, rng) else {
        return id;
    };

    // Partition in place around the split.
    let mid = partition(xs, idx, feature, threshold);
    if mid < cfg.min_leaf || idx.len() - mid < cfg.min_leaf {
        return id;
    }
    let (li, ri) = idx.split_at_mut(mid);
    let left = build(xs, ys, li, depth + 1, cfg, rng, nodes);
    let right = build(xs, ys, ri, depth + 1, cfg, rng, nodes);
    nodes[id as usize] = Node::Split {
        feature: feature as u16,
        threshold,
        left,
        right,
    };
    id
}

/// Stable two-way partition of `idx` by `x[feature] <= threshold`;
/// returns the size of the left side.
fn partition(xs: &[Vec<f64>], idx: &mut [usize], feature: usize, threshold: f64) -> usize {
    idx.sort_by(|&a, &b| {
        let la = xs[a][feature] <= threshold;
        let lb = xs[b][feature] <= threshold;
        lb.cmp(&la) // "left" rows first
    });
    idx.iter()
        .position(|&i| xs[i][feature] > threshold)
        .unwrap_or(idx.len())
}

/// Find the variance-minimizing split over a random feature subset.
/// Returns `None` when no split reduces the SSE.
fn best_split(
    xs: &[Vec<f64>],
    ys: &[f64],
    idx: &[usize],
    cfg: RandomForestConfig,
    rng: &mut StdRng,
) -> Option<(usize, f64)> {
    let n_features = xs[0].len();
    let k = ((n_features as f64 * cfg.feature_frac).ceil() as usize).clamp(1, n_features);
    let mut feats: Vec<usize> = (0..n_features).collect();
    feats.shuffle(rng);
    feats.truncate(k);

    let total: f64 = idx.iter().map(|&i| ys[i]).sum();
    let total_sq: f64 = idx.iter().map(|&i| ys[i] * ys[i]).sum();
    let n = idx.len() as f64;
    let parent_sse = total_sq - total * total / n;

    let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, sse)
    let mut order: Vec<usize> = Vec::with_capacity(idx.len());
    for &f in &feats {
        order.clear();
        order.extend_from_slice(idx);
        order.sort_by(|&a, &b| xs[a][f].partial_cmp(&xs[b][f]).expect("no NaN features"));

        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (pos, &i) in order.iter().enumerate().take(order.len() - 1) {
            let y = ys[i];
            left_sum += y;
            left_sq += y * y;
            let x_here = xs[i][f];
            let x_next = xs[order[pos + 1]][f];
            if x_here == x_next {
                continue; // cannot split between equal feature values
            }
            let ln = (pos + 1) as f64;
            let rn = n - ln;
            if (ln as usize) < cfg.min_leaf || (rn as usize) < cfg.min_leaf {
                continue;
            }
            let right_sum = total - left_sum;
            let right_sq = total_sq - left_sq;
            let sse =
                (left_sq - left_sum * left_sum / ln) + (right_sq - right_sum * right_sum / rn);
            if best.map_or(sse < parent_sse - 1e-12, |(_, _, b)| sse < b) {
                best = Some((f, (x_here + x_next) / 2.0, sse));
            }
        }
    }
    best.map(|(f, t, _)| (f, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> RandomForestConfig {
        RandomForestConfig {
            n_trees: 1,
            max_depth: 10,
            min_leaf: 1,
            feature_frac: 1.0,
            seed: 7,
        }
    }

    #[test]
    fn perfect_step_function() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 9.0 }).collect();
        let idx: Vec<usize> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let t = RegressionTree::fit(&xs, &ys, &idx, cfg(), &mut rng);
        assert_eq!(t.predict(&[10.0]), 1.0);
        assert_eq!(t.predict(&[90.0]), 9.0);
    }

    #[test]
    fn splits_on_the_informative_feature() {
        // Feature 0 is noise; feature 1 determines y.
        let xs: Vec<Vec<f64>> = (0..200)
            .map(|i| vec![(i * 37 % 100) as f64, (i % 2) as f64])
            .collect();
        let ys: Vec<f64> = (0..200)
            .map(|i| if i % 2 == 0 { 0.0 } else { 100.0 })
            .collect();
        let idx: Vec<usize> = (0..200).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let t = RegressionTree::fit(&xs, &ys, &idx, cfg(), &mut rng);
        assert_eq!(t.predict(&[50.0, 0.0]), 0.0);
        assert_eq!(t.predict(&[50.0, 1.0]), 100.0);
    }

    #[test]
    fn respects_max_depth() {
        let xs: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let ys: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let idx: Vec<usize> = (0..64).collect();
        let mut shallow_cfg = cfg();
        shallow_cfg.max_depth = 1;
        let mut rng = StdRng::seed_from_u64(3);
        let t = RegressionTree::fit(&xs, &ys, &idx, shallow_cfg, &mut rng);
        // Depth-1 tree: at most 3 nodes.
        assert!(t.num_nodes() <= 3);
    }

    #[test]
    fn constant_features_become_leaf() {
        let xs: Vec<Vec<f64>> = (0..10).map(|_| vec![5.0]).collect();
        let ys: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let idx: Vec<usize> = (0..10).collect();
        let mut rng = StdRng::seed_from_u64(4);
        let t = RegressionTree::fit(&xs, &ys, &idx, cfg(), &mut rng);
        assert_eq!(t.num_nodes(), 1);
        assert!((t.predict(&[5.0]) - 4.5).abs() < 1e-9);
    }
}
