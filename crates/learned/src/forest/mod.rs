//! Random-forest regression, built from scratch.
//!
//! The paper calibrates its cost-model weights with a random-forest
//! regressor (§4.1.1, via SciPy). This module reproduces that model class
//! natively: bagged CART regression trees with per-split feature
//! subsampling, averaged at prediction time.

mod tree;

pub use tree::RegressionTree;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Hyper-parameters for [`RandomForest::fit`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RandomForestConfig {
    /// Number of trees (bagging rounds).
    pub n_trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples per leaf.
    pub min_leaf: usize,
    /// Fraction of features considered at each split (0, 1].
    pub feature_frac: f64,
    /// RNG seed for reproducible training.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 50,
            max_depth: 12,
            min_leaf: 2,
            feature_frac: 0.7,
            seed: 0x5EED,
        }
    }
}

/// A bagged ensemble of CART regression trees.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
    n_features: usize,
}

impl RandomForest {
    /// Train on rows `xs` (equal-width feature vectors) and targets `ys`.
    ///
    /// # Panics
    /// Panics if `xs` is empty, widths are inconsistent, or
    /// `xs.len() != ys.len()`.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64], cfg: RandomForestConfig) -> Self {
        assert!(!xs.is_empty(), "cannot train on an empty dataset");
        assert_eq!(xs.len(), ys.len());
        let n_features = xs[0].len();
        for r in xs {
            assert_eq!(r.len(), n_features, "inconsistent feature width");
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let n = xs.len();
        let trees = (0..cfg.n_trees)
            .map(|_| {
                // Bootstrap sample (with replacement).
                let sample: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                RegressionTree::fit(xs, ys, &sample, cfg, &mut rng)
            })
            .collect();
        RandomForest { trees, n_features }
    }

    /// Predict the target for feature vector `x` (mean over trees).
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.n_features);
        if self.trees.is_empty() {
            return 0.0;
        }
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Number of trees in the ensemble.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Expected feature-vector width.
    pub fn num_features(&self) -> usize {
        self.n_features
    }

    /// Mean absolute error over a labelled set (diagnostics / tests).
    pub fn mae(&self, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
        if xs.is_empty() {
            return 0.0;
        }
        xs.iter()
            .zip(ys)
            .map(|(x, &y)| (self.predict(x) - y).abs())
            .sum::<f64>()
            / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_dataset(n: usize, f: impl Fn(f64, f64) -> f64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        let mut state = 12345u64;
        for _ in 0..n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let a = (state >> 33) as f64 / (1u64 << 31) as f64 * 10.0;
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = (state >> 33) as f64 / (1u64 << 31) as f64 * 10.0;
            xs.push(vec![a, b]);
            ys.push(f(a, b));
        }
        (xs, ys)
    }

    #[test]
    fn learns_linear_function() {
        let (xs, ys) = make_dataset(2000, |a, b| 3.0 * a + 2.0 * b);
        let rf = RandomForest::fit(&xs, &ys, RandomForestConfig::default());
        let mae = rf.mae(&xs, &ys);
        assert!(mae < 1.5, "training MAE too high: {mae}");
    }

    #[test]
    fn learns_nonlinear_interaction() {
        // The motivating case for ML over linear models (§4.1.2).
        let (xs, ys) = make_dataset(3000, |a, b| if a > 5.0 { a * b } else { a + b });
        let rf = RandomForest::fit(&xs, &ys, RandomForestConfig::default());
        let mae = rf.mae(&xs, &ys);
        assert!(mae < 4.0, "training MAE too high: {mae}");

        // A linear model cannot capture this: compare fit quality.
        let lin = crate::linear::MultiLinearModel::fit(&xs, &ys);
        let lin_mae: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, &y)| (lin.predict(x) - y).abs())
            .sum::<f64>()
            / xs.len() as f64;
        assert!(
            lin_mae > mae * 1.5,
            "forest ({mae}) should beat linear ({lin_mae}) clearly"
        );
    }

    #[test]
    fn deterministic_under_same_seed() {
        let (xs, ys) = make_dataset(500, |a, b| a - b);
        let cfg = RandomForestConfig::default();
        let rf1 = RandomForest::fit(&xs, &ys, cfg);
        let rf2 = RandomForest::fit(&xs, &ys, cfg);
        for x in xs.iter().take(50) {
            assert_eq!(rf1.predict(x), rf2.predict(x));
        }
    }

    #[test]
    fn constant_target() {
        let xs: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let ys = vec![7.5; 100];
        let rf = RandomForest::fit(&xs, &ys, RandomForestConfig::default());
        assert!((rf.predict(&[50.0]) - 7.5).abs() < 1e-9);
    }

    #[test]
    fn single_sample() {
        let rf = RandomForest::fit(&[vec![1.0, 2.0]], &[42.0], RandomForestConfig::default());
        assert_eq!(rf.predict(&[9.0, 9.0]), 42.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_panics() {
        let _ = RandomForest::fit(&[], &[], RandomForestConfig::default());
    }
}
