//! Property tests for the learned models: the PLM's lower-bound and
//! error-budget invariants, RMI monotonicity, Eytzinger vs binary search,
//! exponential search vs `partition_point`.

use flood_learned::eytzinger::Eytzinger;
use flood_learned::plm::PiecewiseLinearModel;
use flood_learned::rmi::{Rmi, RmiConfig};
use flood_learned::search::{exponential_search_lb, exponential_search_ub};
use proptest::prelude::*;

fn sorted_values() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..1_000_000, 1..800).prop_map(|mut v| {
        v.sort_unstable();
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn plm_lower_bound_invariant(values in sorted_values(), delta in 0.0f64..200.0) {
        let plm = PiecewiseLinearModel::build(&values, delta);
        // P(v) <= D(v) for every stored value.
        let mut seen = None;
        for (i, &v) in values.iter().enumerate() {
            if seen == Some(v) {
                continue;
            }
            seen = Some(v);
            prop_assert!(plm.predict(v) <= i, "P({v}) > D({v})");
        }
    }

    #[test]
    fn plm_lookups_exact(values in sorted_values(), probes in proptest::collection::vec(0u64..1_100_000, 20)) {
        let plm = PiecewiseLinearModel::build(&values, 50.0);
        for p in probes {
            prop_assert_eq!(
                plm.lookup_lb(p, |i| values[i]),
                values.partition_point(|&x| x < p)
            );
            prop_assert_eq!(
                plm.lookup_ub(p, |i| values[i]),
                values.partition_point(|&x| x <= p)
            );
        }
    }

    #[test]
    fn rmi_is_monotone_and_bounded(values in sorted_values(), probes in proptest::collection::vec(0u64..1_100_000, 30)) {
        let rmi = Rmi::build(&values, RmiConfig::default());
        let mut sorted_probes = probes;
        sorted_probes.sort_unstable();
        let mut prev = -1.0f64;
        for p in sorted_probes {
            let pred = rmi.predict(p);
            prop_assert!(pred >= 0.0 && pred <= values.len() as f64);
            prop_assert!(pred >= prev, "RMI prediction not monotone");
            prev = pred;
        }
    }

    #[test]
    fn rmi_lookups_exact(values in sorted_values(), probes in proptest::collection::vec(0u64..1_100_000, 20)) {
        let rmi = Rmi::build(&values, RmiConfig::default());
        for p in probes {
            prop_assert_eq!(
                rmi.lookup_lb(p, |i| values[i]),
                values.partition_point(|&x| x < p)
            );
        }
    }

    #[test]
    fn eytzinger_predecessor_matches_binary_search(values in sorted_values(), probes in proptest::collection::vec(0u64..1_100_000, 30)) {
        let e = Eytzinger::build(&values);
        for p in probes {
            let want = match values.partition_point(|&x| x <= p) {
                0 => None,
                r => Some(r - 1),
            };
            prop_assert_eq!(e.predecessor(p), want);
        }
    }

    #[test]
    fn exponential_search_matches_partition_point(
        values in sorted_values(),
        probe in 0u64..1_100_000,
        guess in 0usize..1_000,
    ) {
        let lb = exponential_search_lb(values.len(), guess, probe, |i| values[i]);
        prop_assert_eq!(lb, values.partition_point(|&x| x < probe));
        let ub = exponential_search_ub(values.len(), guess, probe, |i| values[i]);
        prop_assert_eq!(ub, values.partition_point(|&x| x <= probe));
    }

    #[test]
    fn plm_segment_count_monotone_in_delta(values in sorted_values()) {
        let tight = PiecewiseLinearModel::build(&values, 1.0);
        let loose = PiecewiseLinearModel::build(&values, 500.0);
        prop_assert!(loose.num_segments() <= tight.num_segments());
    }
}
