//! The serving front end: shared readers over a [`PublishedIndex`] with
//! background adaptation.
//!
//! [`FloodServer`] composes the pieces the rest of the workspace provides:
//!
//! * reads go through [`PublishedIndex::snapshot`] — every request (or
//!   batch) pins one epoch and never observes a mix of layouts;
//! * admission is layered on the `flood-exec` scoped pool:
//!   [`FloodServer::execute`] is the closed-loop per-request path,
//!   [`FloodServer::serve_batch`] / [`FloodServer::serve_stream`] the
//!   open-loop batched path ([`flood_exec::QueryExecutor::execute_batch`]
//!   under one snapshot per batch);
//! * every served query is recorded in an [`ObservationLog`] through
//!   `&self`, and the [`Relearner`] — behind a mutex that readers never
//!   touch — prices the window, searches, and rebuilds off the serving
//!   path, publishing the replacement with a pointer swap
//!   ([`FloodServer::maybe_adapt`]).

use crate::epoch::{IndexSnapshot, PublishedIndex};
use flood_core::{
    AdaptiveConfig, AdaptiveDiagnostics, FloodConfig, FloodIndex, LayoutOptimizer, ObservationLog,
    Relearner,
};
use flood_exec::{PoolMetrics, QueryExecutor, ThreadPool};
use flood_obs::{Counter, Histogram, MetricsSnapshot, Registry};
use flood_store::{RangeQuery, ScanStats, ScanStatsMetrics, Table, Visitor};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Configuration for [`FloodServer`].
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Window / cadence / degradation threshold for background adaptation.
    pub adaptive: AdaptiveConfig,
    /// Admission: [`FloodServer::serve_stream`] cuts an open-loop stream
    /// into batches of at most this many queries; each batch executes
    /// under one snapshot.
    pub batch: usize,
    /// Worker threads for batched execution. 0 sizes from the environment
    /// (`FLOOD_THREADS`, else available parallelism).
    pub threads: usize,
    /// Keep the metrics registry live (the default). The instrumented
    /// query path costs a clock read and a handful of relaxed atomics per
    /// query — `repro obs` holds it to a ≤5% p50 budget. `false` serves
    /// with no telemetry at all, the baseline that budget is measured
    /// against.
    pub metrics: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            adaptive: AdaptiveConfig::default(),
            batch: 64,
            threads: 0,
            metrics: true,
        }
    }
}

/// What one [`FloodServer::maybe_adapt`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdaptOutcome {
    /// No degradation check was due.
    NotDue,
    /// A check was due but another adaptation was in flight; the due flag
    /// is left set so a later call retries.
    Busy,
    /// The window was priced; the current layout survives.
    Kept,
    /// A re-learned layout was built and published as this epoch.
    Swapped(u64),
}

/// One batch's results: every query answered against the same epoch.
#[derive(Debug)]
pub struct ServedBatch<V> {
    /// The epoch the whole batch was served from.
    pub epoch: u64,
    /// Per-query `(visitor, stats)` in input order.
    pub results: Vec<(V, ScanStats)>,
}

/// Serving-layer counters ([`FloodServer::diagnostics`]).
#[derive(Debug, Clone)]
pub struct ServeDiagnostics {
    /// Current epoch number.
    pub epoch: u64,
    /// Layout swaps published.
    pub swaps: u64,
    /// Swapped-out epochs whose last reader has dropped (memory freed).
    pub retired_epochs: usize,
    /// Swapped-out epochs still pinned by in-flight snapshots.
    pub live_retired: usize,
    /// Requests admitted.
    pub submitted: u64,
    /// Requests answered (== `submitted` once the server is idle: the
    /// serving path never drops a request).
    pub completed: u64,
    /// Queries recorded in the observation window.
    pub observed: u64,
    /// `maybe_adapt` calls that found the relearner busy.
    pub adapt_skipped: u64,
    /// The build side's counters (checks, relearns, cache work).
    pub adaptive: AdaptiveDiagnostics,
}

/// The server's registered metric handles, one `flood-obs` [`Registry`]
/// per server, grouped by subsystem:
///
/// * `serve` — `queries`/`completed`/`batches` counters, `query_ns`
///   (closed-loop latency), `batch_ns` and `batch_size` histograms;
/// * `scan` — every [`ScanStats`] counter, accumulated per served query;
/// * `pool` — executor telemetry (tasks, runs, busy time, injector depth);
/// * `adapt` — `swaps`/`kept`/`busy` outcome counters, `swap_wall_ns`,
///   plus the relearner's lifetime gauges refreshed at snapshot time;
/// * `epoch` — publication gauges (current epoch, retirements, pinned
///   readers) refreshed at snapshot time.
#[derive(Debug)]
pub struct ServerMetrics {
    registry: Registry,
    queries: Arc<Counter>,
    completed: Arc<Counter>,
    batches: Arc<Counter>,
    query_ns: Arc<Histogram>,
    batch_ns: Arc<Histogram>,
    batch_size: Arc<Histogram>,
    scan: ScanStatsMetrics,
    pool: PoolMetrics,
    swaps: Arc<Counter>,
    kept: Arc<Counter>,
    busy: Arc<Counter>,
    swap_wall_ns: Arc<Histogram>,
}

impl ServerMetrics {
    fn new() -> Self {
        let registry = Registry::new();
        ServerMetrics {
            queries: registry.counter("serve", "queries"),
            completed: registry.counter("serve", "completed"),
            batches: registry.counter("serve", "batches"),
            query_ns: registry.histogram("serve", "query_ns"),
            batch_ns: registry.histogram("serve", "batch_ns"),
            batch_size: registry.histogram("serve", "batch_size"),
            scan: ScanStatsMetrics::register(&registry, "scan"),
            pool: PoolMetrics::register(&registry, "pool"),
            swaps: registry.counter("adapt", "swaps"),
            kept: registry.counter("adapt", "kept"),
            busy: registry.counter("adapt", "busy"),
            swap_wall_ns: registry.histogram("adapt", "swap_wall_ns"),
            registry,
        }
    }

    /// The registry itself — e.g. to [`Registry::absorb`] this server's
    /// metrics into the process-global registry at end of run.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// A shared-read front end over one table's [`FloodIndex`], re-learning
/// its layout in the background while readers stream through.
///
/// All serving methods take `&self`: share a `FloodServer` across threads
/// (e.g. `std::thread::scope`) and call [`FloodServer::execute`] /
/// [`FloodServer::serve_batch`] from readers while one maintenance thread
/// polls [`FloodServer::maybe_adapt`].
#[derive(Debug)]
pub struct FloodServer {
    published: PublishedIndex,
    flood_cfg: FloodConfig,
    exec: QueryExecutor,
    batch: usize,
    obs: ObservationLog,
    /// Set by the recorder that crosses the check cadence, consumed by
    /// the adaptation turn that wins the relearner lock.
    check_due: AtomicBool,
    /// The build side. Readers never take this lock — a re-learn in
    /// flight only makes `maybe_adapt` report [`AdaptOutcome::Busy`].
    relearner: Mutex<Relearner>,
    submitted: AtomicU64,
    completed: AtomicU64,
    adapt_skipped: AtomicU64,
    /// `None` when [`ServeConfig::metrics`] was off: the query path then
    /// takes no clock reads and touches no metric atomics at all.
    metrics: Option<ServerMetrics>,
}

impl FloodServer {
    /// Learn an initial layout for `train` over `table`, build it, and
    /// publish it as epoch 0.
    pub fn build(
        table: &Table,
        train: &[RangeQuery],
        optimizer: LayoutOptimizer,
        flood_cfg: FloodConfig,
        cfg: ServeConfig,
    ) -> Self {
        let (relearner, learned) = Relearner::learn_initial(table, train, optimizer, cfg.adaptive);
        let index = FloodIndex::build(table, learned.layout, flood_cfg.clone());
        let pool = if cfg.threads == 0 {
            ThreadPool::from_env()
        } else {
            ThreadPool::new(cfg.threads)
        };
        FloodServer {
            published: PublishedIndex::new(index),
            flood_cfg,
            exec: QueryExecutor::new(pool),
            batch: cfg.batch.max(1),
            obs: ObservationLog::new(cfg.adaptive.window, cfg.adaptive.check_every),
            check_due: AtomicBool::new(false),
            relearner: Mutex::new(relearner),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            adapt_skipped: AtomicU64::new(0),
            metrics: cfg.metrics.then(ServerMetrics::new),
        }
    }

    /// Closed-loop path: execute one query against the current snapshot,
    /// record the observation, and return `(stats, epoch served from)`.
    pub fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> (ScanStats, u64) {
        use flood_store::MultiDimIndex;
        let mut span = flood_obs::span("query");
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let snap = {
            let _pin = flood_obs::span("pin");
            self.published.snapshot()
        };
        let stats = {
            let _scan = flood_obs::span("scan");
            snap.index().execute(query, agg_dim, visitor)
        };
        {
            let _observe = flood_obs::span("observe");
            self.note(query);
        }
        self.completed.fetch_add(1, Ordering::Relaxed);
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.queries.inc();
            m.completed.inc();
            m.query_ns.record(t0.elapsed().as_nanos() as u64);
            m.scan.record(&stats);
        }
        if span.is_sampled() {
            span.note(&format!(
                "epoch={} matched={}",
                snap.epoch(),
                stats.points_matched
            ));
        }
        (stats, snap.epoch())
    }

    /// Open-loop path: execute a batch under one snapshot, queries spread
    /// across the executor's workers, results in input order.
    pub fn serve_batch<V>(&self, queries: &[RangeQuery], agg_dim: Option<usize>) -> ServedBatch<V>
    where
        V: Visitor + Default + Send,
    {
        let mut span = flood_obs::span("batch");
        self.submitted
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let snap = {
            let _pin = flood_obs::span("pin");
            self.published.snapshot()
        };
        let results = {
            let _scan = flood_obs::span("scan");
            self.exec.execute_batch_observed::<V, _>(
                snap.index(),
                queries,
                agg_dim,
                self.metrics.as_ref().map(|m| &m.pool),
            )
        };
        {
            let _observe = flood_obs::span("observe");
            for q in queries {
                self.note(q);
            }
        }
        self.completed
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.batches.inc();
            m.batch_ns.record(t0.elapsed().as_nanos() as u64);
            m.batch_size.record(queries.len() as u64);
            m.queries.add(queries.len() as u64);
            m.completed.add(queries.len() as u64);
            for (_, s) in &results {
                m.scan.record(s);
            }
        }
        if span.is_sampled() {
            span.note(&format!("epoch={} size={}", snap.epoch(), queries.len()));
        }
        ServedBatch {
            epoch: snap.epoch(),
            results,
        }
    }

    /// Admission over an open-loop stream: cut `queries` into batches of
    /// at most [`ServeConfig::batch`] and serve each under a fresh
    /// snapshot, so a stream in flight picks up a published swap at the
    /// next batch boundary.
    pub fn serve_stream<V>(
        &self,
        queries: &[RangeQuery],
        agg_dim: Option<usize>,
    ) -> Vec<ServedBatch<V>>
    where
        V: Visitor + Default + Send,
    {
        queries
            .chunks(self.batch)
            .map(|chunk| self.serve_batch(chunk, agg_dim))
            .collect()
    }

    /// Record a served query; remember when a degradation check comes due.
    fn note(&self, query: &RangeQuery) {
        if self.obs.record(query) {
            self.check_due.store(true, Ordering::Release);
        }
    }

    /// The adaptation turn, callable from any maintenance thread. When a
    /// check is due and no other adaptation is in flight: price the
    /// window against the current snapshot, and when degraded, search,
    /// rebuild off the serving path, and publish the replacement.
    pub fn maybe_adapt(&self) -> AdaptOutcome {
        if !self.check_due.load(Ordering::Acquire) {
            return AdaptOutcome::NotDue;
        }
        let Ok(mut relearner) = self.relearner.try_lock() else {
            self.adapt_skipped.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.busy.inc();
            }
            return AdaptOutcome::Busy;
        };
        self.check_due.store(false, Ordering::Release);
        let _span = flood_obs::span("adapt");
        let snap = self.published.snapshot();
        let window = self.obs.snapshot();
        match relearner.check(&window, snap.index().data(), snap.index().layout()) {
            Some(learned) => AdaptOutcome::Swapped(self.rebuild_and_publish(&snap, learned.layout)),
            None => {
                if let Some(m) = &self.metrics {
                    m.kept.inc();
                }
                AdaptOutcome::Kept
            }
        }
    }

    /// Re-learn on `workload` unconditionally and publish the result —
    /// deterministic swap schedules for experiments and soak tests.
    /// Blocks until the new epoch is live; returns its number.
    pub fn force_relearn(&self, workload: &[RangeQuery]) -> u64 {
        let mut relearner = self.relearner.lock().expect("relearner poisoned");
        let snap = self.published.snapshot();
        let learned = relearner.relearn_on(snap.index().data(), workload);
        self.rebuild_and_publish(&snap, learned.layout)
    }

    /// Build a new index over the snapshot's data (Flood is clustered —
    /// the data multiset is the table) and swap it in.
    fn rebuild_and_publish(&self, snap: &IndexSnapshot, layout: flood_core::Layout) -> u64 {
        let _span = flood_obs::span("epoch_swap");
        let start = self.metrics.as_ref().map(|_| Instant::now());
        let index = FloodIndex::build(snap.index().data(), layout, self.flood_cfg.clone());
        let epoch = self.published.publish(index);
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            m.swaps.inc();
            m.swap_wall_ns.record(t0.elapsed().as_nanos() as u64);
        }
        epoch
    }

    /// A snapshot of the current epoch (for harnesses that pin an epoch
    /// across their own measurement loops).
    pub fn snapshot(&self) -> IndexSnapshot {
        self.published.snapshot()
    }

    /// The publication point (epoch / swap / retirement accounting).
    pub fn published(&self) -> &PublishedIndex {
        &self.published
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.published.epoch()
    }

    /// Worker threads batched execution uses.
    pub fn threads(&self) -> usize {
        self.exec.threads()
    }

    /// Refresh the point-in-time gauges (epoch accounting, relearner
    /// lifetime counters) the hot path doesn't maintain. The relearner is
    /// polled with `try_lock`: a re-learn in flight keeps its previous
    /// gauge values rather than blocking the scrape.
    fn refresh_gauges(&self, m: &ServerMetrics) {
        let reg = &m.registry;
        let g = |name: &str, v: i64| reg.gauge("epoch", name).set(v);
        g("current", self.published.epoch() as i64);
        g("swaps", self.published.swaps() as i64);
        g("retired", self.published.retired_epochs() as i64);
        g("live_retired", self.published.live_retired() as i64);
        g("pinned_readers", self.published.pinned_readers() as i64);
        if let Ok(relearner) = self.relearner.try_lock() {
            relearner.diagnostics().export(reg, "adapt");
        }
    }

    /// A point-in-time copy of every server metric — scan, pool, adapt and
    /// epoch subsystems included. `None` when [`ServeConfig::metrics`] was
    /// off.
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        let m = self.metrics.as_ref()?;
        self.refresh_gauges(m);
        Some(m.registry.snapshot())
    }

    /// Prometheus text exposition of the current metrics. `None` when
    /// metrics are off.
    pub fn metrics_prometheus(&self) -> Option<String> {
        Some(self.metrics_snapshot()?.prometheus_text())
    }

    /// JSON exposition of the current metrics. `None` when metrics are
    /// off.
    pub fn metrics_json(&self) -> Option<String> {
        Some(self.metrics_snapshot()?.to_json())
    }

    /// The live metric handles (e.g. to absorb this server's registry into
    /// the process-global one). Gauges are refreshed first, as in
    /// [`FloodServer::metrics_snapshot`]. `None` when metrics are off.
    pub fn metrics(&self) -> Option<&ServerMetrics> {
        let m = self.metrics.as_ref()?;
        self.refresh_gauges(m);
        Some(m)
    }

    /// Serving-layer counters plus the build side's diagnostics.
    pub fn diagnostics(&self) -> ServeDiagnostics {
        let adaptive = self
            .relearner
            .lock()
            .expect("relearner poisoned")
            .diagnostics();
        ServeDiagnostics {
            epoch: self.published.epoch(),
            swaps: self.published.swaps(),
            retired_epochs: self.published.retired_epochs(),
            live_retired: self.published.live_retired(),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            observed: self.obs.observed(),
            adapt_skipped: self.adapt_skipped.load(Ordering::Relaxed),
            adaptive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_core::{CostModel, OptimizerConfig};
    use flood_store::{CountVisitor, MultiDimIndex, Table};

    fn table() -> Table {
        let n = 6_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| (i * 7919) % 10_000).collect(),
            (0..n).map(|i| (i * 104729) % 10_000).collect(),
            (0..n).collect(),
        ])
    }

    fn optimizer() -> LayoutOptimizer {
        LayoutOptimizer::with_config(
            CostModel::analytic_default(),
            OptimizerConfig {
                data_sample: 600,
                query_sample: 10,
                gd_steps: 6,
                max_total_cells: 1 << 10,
                ..Default::default()
            },
        )
    }

    fn workload_on(dim: usize, n: usize) -> Vec<RangeQuery> {
        (0..n)
            .map(|i| {
                RangeQuery::all(3).with_range(
                    dim,
                    (i as u64 * 37) % 9_000,
                    (i as u64 * 37) % 9_000 + 150,
                )
            })
            .collect()
    }

    fn server(adaptive: AdaptiveConfig) -> (Table, FloodServer) {
        let t = table();
        let s = FloodServer::build(
            &t,
            &workload_on(0, 30),
            optimizer(),
            FloodConfig::default(),
            ServeConfig {
                adaptive,
                batch: 16,
                threads: 1,
                ..Default::default()
            },
        );
        (t, s)
    }

    #[test]
    fn per_request_results_match_ground_truth() {
        let (t, s) = server(AdaptiveConfig::default());
        for q in &workload_on(1, 20) {
            let mut v = CountVisitor::default();
            let (_, epoch) = s.execute(q, None, &mut v);
            assert_eq!(epoch, 0);
            let truth = (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64;
            assert_eq!(v.count, truth);
        }
        let d = s.diagnostics();
        assert_eq!(d.submitted, 20);
        assert_eq!(d.completed, 20);
        assert_eq!(d.observed, 20);
    }

    #[test]
    fn batched_stream_matches_serial_and_counts_requests() {
        let (t, s) = server(AdaptiveConfig::default());
        let queries = workload_on(1, 40);
        let batches = s.serve_stream::<CountVisitor>(&queries, None);
        assert_eq!(batches.len(), 3, "40 queries at batch 16 → 16+16+8");
        let mut served = 0;
        for b in &batches {
            for ((v, s_), q) in b.results.iter().zip(queries[served..].iter()) {
                let mut want = CountVisitor::default();
                let want_stats = s.snapshot().index().execute(q, None, &mut want);
                assert_eq!(v.count, want.count);
                assert_eq!(*s_, want_stats);
                let truth = (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64;
                assert_eq!(v.count, truth);
            }
            served += b.results.len();
        }
        assert_eq!(served, queries.len());
        let d = s.diagnostics();
        assert_eq!(d.submitted, 40);
        assert_eq!(d.completed, 40, "zero dropped requests");
    }

    #[test]
    fn shifted_workload_swaps_in_the_background_turn() {
        let (t, s) = server(AdaptiveConfig {
            window: 24,
            check_every: 12,
            degradation_factor: 1.2,
            ..Default::default()
        });
        assert_eq!(s.maybe_adapt(), AdaptOutcome::NotDue);
        let before = s.snapshot();
        let mut swapped = false;
        for q in &workload_on(1, 60) {
            let mut v = CountVisitor::default();
            s.execute(q, None, &mut v);
            if let AdaptOutcome::Swapped(e) = s.maybe_adapt() {
                assert!(e >= 1);
                swapped = true;
            }
        }
        assert!(swapped, "shifted workload must publish a new layout");
        assert_eq!(before.epoch(), 0, "pinned snapshot stays on its epoch");
        assert!(s.snapshot().index().layout().order().contains(&1));
        // The pinned pre-swap snapshot still answers correctly.
        let q = &workload_on(1, 1)[0];
        let mut v = CountVisitor::default();
        before.index().execute(q, None, &mut v);
        let truth = (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64;
        assert_eq!(v.count, truth);
        drop(before);
        let d = s.diagnostics();
        assert!(d.swaps >= 1);
        assert_eq!(
            d.retired_epochs as u64, d.swaps,
            "all retired epochs freed once readers dropped"
        );
    }

    #[test]
    fn force_relearn_publishes_deterministically() {
        let (_, s) = server(AdaptiveConfig::default());
        assert_eq!(s.force_relearn(&workload_on(1, 24)), 1);
        assert_eq!(s.force_relearn(&workload_on(0, 24)), 2);
        assert_eq!(s.epoch(), 2);
        assert_eq!(s.diagnostics().adaptive.relearns, 2);
    }

    #[test]
    fn metrics_snapshot_covers_every_subsystem() {
        let (_, s) = server(AdaptiveConfig::default());
        // Mixed traffic: closed-loop requests and an open-loop stream.
        for q in &workload_on(1, 5) {
            let mut v = CountVisitor::default();
            s.execute(q, None, &mut v);
        }
        s.serve_stream::<CountVisitor>(&workload_on(0, 20), None);
        s.force_relearn(&workload_on(1, 24));
        let snap = s.metrics_snapshot().expect("metrics on by default");
        assert_eq!(
            snap.subsystems(),
            vec!["adapt", "epoch", "pool", "scan", "serve"]
        );
        // serve: every admitted query is counted, per path.
        assert_eq!(snap.counter("serve", "queries"), Some(25));
        assert_eq!(snap.counter("serve", "completed"), Some(25));
        assert_eq!(snap.counter("serve", "batches"), Some(2), "20 at batch 16");
        let qh = snap.histogram("serve", "query_ns").unwrap();
        assert_eq!(qh.count, 5, "closed-loop latencies only");
        assert!(qh.p50 > 0);
        let bs = snap.histogram("serve", "batch_size").unwrap();
        assert_eq!(bs.sum, 20, "batch sizes sum to open-loop queries");
        // scan: the bridge saw every query's stats.
        assert!(snap.counter("scan", "points_scanned").unwrap() > 0);
        // pool: the observed batch path ran its tasks.
        assert_eq!(snap.counter("pool", "tasks"), Some(20));
        assert_eq!(snap.counter("pool", "runs"), Some(2));
        // adapt + epoch: the forced swap is visible everywhere.
        assert_eq!(snap.counter("adapt", "swaps"), Some(1));
        assert_eq!(snap.histogram("adapt", "swap_wall_ns").unwrap().count, 1);
        assert_eq!(snap.gauge("adapt", "relearns"), Some(1));
        assert_eq!(snap.gauge("epoch", "current"), Some(1));
        assert_eq!(snap.gauge("epoch", "swaps"), Some(1));
        assert_eq!(snap.gauge("epoch", "pinned_readers"), Some(0));
        // Both expositions render the same counters.
        let prom = s.metrics_prometheus().unwrap();
        assert!(prom.contains("flood_serve_queries_total 25"), "{prom}");
        assert!(prom.contains("flood_epoch_current 1"), "{prom}");
        let json = s.metrics_json().unwrap();
        assert!(json.contains("\"queries\":25"), "{json}");
    }

    #[test]
    fn metrics_off_serves_without_telemetry() {
        let t = table();
        let s = FloodServer::build(
            &t,
            &workload_on(0, 30),
            optimizer(),
            FloodConfig::default(),
            ServeConfig {
                metrics: false,
                batch: 16,
                threads: 1,
                ..Default::default()
            },
        );
        let mut v = CountVisitor::default();
        s.execute(&workload_on(1, 1)[0], None, &mut v);
        assert!(s.metrics_snapshot().is_none());
        assert!(s.metrics_prometheus().is_none());
        assert!(s.metrics_json().is_none());
        assert!(s.metrics().is_none());
        // The plain diagnostics still work with metrics off.
        assert_eq!(s.diagnostics().submitted, 1);
    }
}
