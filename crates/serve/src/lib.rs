//! # flood-serve
//!
//! A concurrent serving layer over the Flood index: shared readers, live
//! layout adaptation, zero coordination on the read path.
//!
//! The paper evaluates Flood single-threaded (§7) and sketches both
//! concurrency and workload-shift adaptation as §8 future work. The rest
//! of this workspace supplies the pieces — `flood-exec`'s scoped pool,
//! `flood-core`'s [`Relearner`]/[`ObservationLog`] split — and this crate
//! composes them into a front end where *re-learning never blocks
//! serving*:
//!
//! * [`PublishedIndex`] — the live layout behind an epoch-swapped `Arc`.
//!   Readers clone the `Arc` (a read lock held for nanoseconds) and run
//!   against an immutable snapshot; a publisher swaps a fully built
//!   replacement in with a pointer exchange. A retired epoch is freed by
//!   `Arc` drop semantics exactly when its last in-flight reader lets go.
//! * [`FloodServer`] — admission (per-request closed-loop, batched
//!   open-loop over the `flood-exec` pool), observation recording through
//!   `&self`, and a background adaptation turn ([`FloodServer::maybe_adapt`])
//!   that prices the observed window, re-learns when degraded, rebuilds
//!   off the serving path, and publishes.
//!
//! The concurrency contract — every result is bit-identical to a serial
//! run against *either* the old or the new layout, never a mix — is
//! pinned by `tests/prop_serve.rs`; `tests/serve_soak.rs` drives open-loop
//! drift traffic with background adaptation end to end. `repro serve`
//! measures steady-state vs during-swap latency percentiles
//! (BASELINES.md).
//!
//! The same publication machinery is generic ([`Published<T>`]): the
//! [`TieredServer`] publishes sealed cold-tier scan generations through
//! it, with a fallible retry-then-degrade read path and sealed-reads
//! insert visibility (`tests/tiered_soak.rs`).

pub mod epoch;
pub mod server;
pub mod tiered;

pub use epoch::{Epoch, EpochIndex, IndexSnapshot, Published, PublishedIndex};
pub use server::{
    AdaptOutcome, FloodServer, ServeConfig, ServeDiagnostics, ServedBatch, ServerMetrics,
};
pub use tiered::{TieredServeDiagnostics, TieredServer, TieredSnapshot};

use flood_core::{AdaptiveFlood, FloodIndex, ObservationLog, Relearner};

// The whole design rests on these types being shareable across reader
// threads; regressions (an Rc, a RefCell, a raw pointer) must fail to
// compile here, not deadlock in production.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<FloodIndex>();
    _assert_send_sync::<EpochIndex>();
    _assert_send_sync::<PublishedIndex>();
    _assert_send_sync::<FloodServer>();
    _assert_send_sync::<ObservationLog>();
    _assert_send_sync::<Relearner>();
    _assert_send_sync::<AdaptiveFlood>();
    _assert_send_sync::<Epoch<flood_store::TieredScan>>();
    _assert_send_sync::<Published<flood_store::TieredScan>>();
    _assert_send_sync::<TieredServer>();
};
