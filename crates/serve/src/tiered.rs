//! Serving over tiered storage: epoch-swapped [`TieredScan`] generations
//! with a buffered write side.
//!
//! The shape mirrors [`FloodServer`](crate::server::FloodServer) — readers
//! pin one epoch through [`Published::snapshot`] and never take a lock for
//! the duration of a query — but the published value is a sealed
//! [`TieredScan`] generation instead of a `FloodIndex` layout, and the
//! failure model is different: a cold read can die on I/O, so the serving
//! path is *fallible with a retry budget* rather than infallible.
//!
//! **Sealed-reads semantics.** [`TieredServer::insert`] buffers rows on
//! the build side; readers do not see them until [`TieredServer::compact`]
//! seals the buffer into cold segments and publishes the next generation.
//! Every epoch therefore answers with a deterministic row count — the
//! property the soak suite pins (no torn reads halfway through an insert
//! batch, ever).
//!
//! **Retirement pins residency.** Generations share segment files by
//! `Arc` (`TieredTable` is a shallow clone), so a reader holding a
//! retired epoch's snapshot keeps exactly the segments that epoch
//! references loadable — evicting the cache only drops decoded bytes, and
//! a re-fault goes back to the backend, which still holds the blobs until
//! the last referencing generation drops.

use crate::epoch::{Epoch, Published};
use flood_obs::Registry;
use flood_store::tier::index::SCAN_RETRIES;
use flood_store::{
    RangeQuery, ScanStats, SegmentCache, StorageBackend, StorageError, Table, TierConfig,
    TieredDelta, TieredScan, Visitor,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A reader's snapshot of one sealed generation.
pub type TieredSnapshot = Arc<Epoch<TieredScan>>;

/// Serving-layer counters ([`TieredServer::diagnostics`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TieredServeDiagnostics {
    /// Current epoch number.
    pub epoch: u64,
    /// Generations published (compactions that swapped).
    pub swaps: u64,
    /// Swapped-out generations whose last reader has dropped.
    pub retired_epochs: usize,
    /// Swapped-out generations still pinned by in-flight snapshots.
    pub live_retired: usize,
    /// Queries admitted.
    pub submitted: u64,
    /// Queries answered completely (`submitted == completed + degraded`
    /// once idle: the serving path never silently drops a query).
    pub completed: u64,
    /// Attempts that hit a storage fault and were retried in-place.
    pub retried: u64,
    /// Queries that exhausted the retry budget and surfaced a typed error.
    pub degraded: u64,
    /// Rows buffered on the build side, not yet visible to readers.
    pub buffered: usize,
}

/// A shared-read front end over one sealed [`TieredScan`], compacting
/// buffered inserts into new cold generations in the background.
///
/// All methods take `&self`: share across threads and call
/// [`TieredServer::execute`] from readers while one maintenance thread
/// alternates [`TieredServer::insert`] / [`TieredServer::compact`] and an
/// eviction thread churns the [`SegmentCache`].
#[derive(Debug)]
pub struct TieredServer {
    published: Published<TieredScan>,
    /// The build side. Readers never take this lock — queries run against
    /// the published snapshot only.
    build: Mutex<TieredDelta>,
    submitted: AtomicU64,
    completed: AtomicU64,
    retried: AtomicU64,
    degraded: AtomicU64,
}

impl TieredServer {
    /// Seal `table` cold through `backend` and publish it as epoch 0.
    pub fn seal(
        table: &Table,
        backend: Arc<dyn StorageBackend>,
        cfg: TierConfig,
    ) -> Result<Self, StorageError> {
        let base = flood_store::TieredTable::seal(table, backend, cfg)?;
        Ok(Self::from_delta(TieredDelta::new(base)))
    }

    /// Serve an existing delta (epoch 0 = its current base; any rows
    /// already buffered stay invisible until the first compaction).
    pub fn from_delta(delta: TieredDelta) -> Self {
        TieredServer {
            published: Published::new(TieredScan::new(delta.base().clone())),
            build: Mutex::new(delta),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            retried: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
        }
    }

    /// Execute one query against the current snapshot. Transient storage
    /// faults are retried in-place up to [`SCAN_RETRIES`] times (the
    /// faulting scan guarantees the visitor saw nothing, so a retry is
    /// safe); a query that exhausts the budget counts as degraded and
    /// surfaces the last typed error. Returns `(stats, epoch served
    /// from)`.
    pub fn execute(
        &self,
        query: &RangeQuery,
        agg_dim: Option<usize>,
        visitor: &mut dyn Visitor,
    ) -> Result<(ScanStats, u64), StorageError> {
        self.submitted.fetch_add(1, Ordering::Relaxed);
        let snap = self.published.snapshot();
        let mut last: Option<StorageError> = None;
        for attempt in 0..=SCAN_RETRIES {
            match snap.value().try_execute(query, agg_dim, visitor) {
                Ok(stats) => {
                    self.completed.fetch_add(1, Ordering::Relaxed);
                    return Ok((stats, snap.epoch()));
                }
                Err(e) => {
                    if attempt < SCAN_RETRIES {
                        self.retried.fetch_add(1, Ordering::Relaxed);
                    }
                    last = Some(e);
                }
            }
        }
        self.degraded.fetch_add(1, Ordering::Relaxed);
        Err(last.expect("loop ran"))
    }

    /// Buffer one row on the build side; returns its stable id. Invisible
    /// to readers until [`TieredServer::compact`] publishes.
    pub fn insert(&self, row: &[u64]) -> Result<usize, StorageError> {
        self.build.lock().expect("build side poisoned").insert(row)
    }

    /// Seal the buffered rows into cold segments and publish the next
    /// generation. Returns the new epoch number. On error the buffer and
    /// the published generation are both unchanged (compaction stages all
    /// backend writes before mutating the table). Publishing with an empty
    /// buffer is a no-op swap: the new epoch serves the same rows.
    pub fn compact(&self) -> Result<u64, StorageError> {
        let mut delta = self.build.lock().expect("build side poisoned");
        delta.compact()?;
        Ok(self
            .published
            .publish(TieredScan::new(delta.base().clone())))
    }

    /// A snapshot of the current generation (pin an epoch across a
    /// measurement loop; holding it keeps that generation's segments
    /// loadable even after later compactions retire it).
    pub fn snapshot(&self) -> TieredSnapshot {
        self.published.snapshot()
    }

    /// The publication point (epoch / swap / retirement accounting).
    pub fn published(&self) -> &Published<TieredScan> {
        &self.published
    }

    /// Current epoch number.
    pub fn epoch(&self) -> u64 {
        self.published.epoch()
    }

    /// Rows visible to readers in the current epoch.
    pub fn len(&self) -> usize {
        self.published.snapshot().value().data().len()
    }

    /// `true` when the current epoch serves no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The segment cache every generation shares — hand this to an
    /// eviction thread ([`SegmentCache::evict_all`] /
    /// [`SegmentCache::set_budget`]) to churn the cold tier under load.
    pub fn cache(&self) -> Arc<SegmentCache> {
        self.published.snapshot().value().data().cache().clone()
    }

    /// Publish point-in-time gauges: epoch accounting under
    /// `{subsystem}` and cache residency under `{subsystem}` too
    /// (`faults`/`hits`/`evictions`/`resident_bytes`/...).
    pub fn publish_gauges(&self, registry: &Registry, subsystem: &str) {
        let g = |name: &str, v: i64| registry.gauge(subsystem, name).set(v);
        g("epoch", self.published.epoch() as i64);
        g("swaps", self.published.swaps() as i64);
        g("retired", self.published.retired_epochs() as i64);
        g("live_retired", self.published.live_retired() as i64);
        g("pinned_readers", self.published.pinned_readers() as i64);
        g("degraded", self.degraded.load(Ordering::Relaxed) as i64);
        g("retried", self.retried.load(Ordering::Relaxed) as i64);
        self.cache().publish_gauges(registry, subsystem);
    }

    /// Serving-layer counters.
    pub fn diagnostics(&self) -> TieredServeDiagnostics {
        TieredServeDiagnostics {
            epoch: self.published.epoch(),
            swaps: self.published.swaps(),
            retired_epochs: self.published.retired_epochs(),
            live_retired: self.published.live_retired(),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            retried: self.retried.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            buffered: self.build.lock().expect("build side poisoned").buffered(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_store::{CountVisitor, FailingBackend, MemBackend, SumVisitor};

    fn table(n: u64) -> Table {
        Table::from_columns(vec![
            (0..n).collect(),
            (0..n).map(|i| (i * 31) % 997).collect(),
        ])
    }

    fn mem_server(n: u64, budget: usize) -> TieredServer {
        TieredServer::seal(
            &table(n),
            Arc::new(MemBackend::new()),
            TierConfig {
                budget_bytes: budget,
                segment_blocks: 2,
            },
        )
        .unwrap()
    }

    #[test]
    fn serves_ground_truth_from_cold_storage() {
        let s = mem_server(2_000, 0);
        let t = table(2_000);
        for (lo, hi) in [(0, 1_999), (100, 700), (512, 513)] {
            let q = RangeQuery::all(2).with_range(0, lo, hi);
            let mut v = CountVisitor::default();
            let (stats, epoch) = s.execute(&q, None, &mut v).unwrap();
            assert_eq!(epoch, 0);
            let truth = (0..t.len()).filter(|&r| q.matches(&t.row(r))).count() as u64;
            assert_eq!(v.count, truth);
            assert_eq!(stats.points_matched, truth);
        }
        let d = s.diagnostics();
        assert_eq!(d.submitted, 3);
        assert_eq!(d.completed, 3);
        assert_eq!((d.retried, d.degraded), (0, 0));
    }

    #[test]
    fn inserts_invisible_until_compact_publishes() {
        let s = mem_server(1_000, 0);
        let q = RangeQuery::all(2);
        for i in 0..50u64 {
            let id = s.insert(&[1_000 + i, i]).unwrap();
            assert_eq!(id, 1_000 + i as usize, "stable append-only ids");
        }
        let mut v = CountVisitor::default();
        let (_, epoch) = s.execute(&q, None, &mut v).unwrap();
        assert_eq!((v.count, epoch), (1_000, 0), "buffered rows stay invisible");
        assert_eq!(s.diagnostics().buffered, 50);

        let snap0 = s.snapshot();
        assert_eq!(s.compact().unwrap(), 1);
        assert_eq!(s.diagnostics().buffered, 0);
        let mut v = CountVisitor::default();
        let (_, epoch) = s.execute(&q, None, &mut v).unwrap();
        assert_eq!((v.count, epoch), (1_050, 1), "sealed rows visible at once");

        // The pinned pre-compaction snapshot still serves its own count,
        // even after the cache is emptied under it.
        s.cache().evict_all();
        let mut v = CountVisitor::default();
        let stats = snap0.value().try_execute(&q, None, &mut v).unwrap();
        assert_eq!(v.count, 1_000, "retired epoch stays consistent");
        assert_eq!(stats.points_matched, 1_000);
        drop(snap0);
        assert_eq!(s.diagnostics().retired_epochs, 1);
    }

    #[test]
    fn transient_faults_retry_persistent_faults_degrade() {
        let failing = Arc::new(FailingBackend::new(Arc::new(MemBackend::new())));
        let s = TieredServer::seal(
            &table(1_024),
            failing.clone() as Arc<dyn StorageBackend>,
            TierConfig {
                budget_bytes: 0,
                segment_blocks: 2,
            },
        )
        .unwrap();
        let q = RangeQuery::all(2).with_range(0, 0, 700);

        // One transient fault: absorbed by the in-place retry.
        failing.fail_load(1);
        let mut v = CountVisitor::default();
        let (stats, _) = s.execute(&q, None, &mut v).unwrap();
        assert_eq!(v.count, 701, "retry must not duplicate or lose rows");
        assert_eq!(stats.points_matched, 701);
        assert_eq!(s.diagnostics().retried, 1);
        assert_eq!(s.diagnostics().degraded, 0);

        // Faults on every attempt: the query degrades with a typed error
        // and the visitor saw nothing.
        for k in 0..=SCAN_RETRIES as u64 {
            failing.fail_load(1 + k);
        }
        let mut v = SumVisitor::default();
        let err = s.execute(&q, Some(1), &mut v).unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }), "{err}");
        assert_eq!((v.sum, v.count), (0, 0), "degraded query leaked results");
        let d = s.diagnostics();
        assert_eq!(d.degraded, 1);
        assert_eq!(d.submitted, d.completed + d.degraded);

        // Injections exhausted: service is whole again.
        let mut v = CountVisitor::default();
        s.execute(&q, None, &mut v).unwrap();
        assert_eq!(v.count, 701);
    }

    #[test]
    fn empty_compact_swaps_same_rows_and_gauges_export() {
        let s = mem_server(512, usize::MAX);
        assert_eq!(s.compact().unwrap(), 1, "empty buffer still swaps");
        assert_eq!(s.len(), 512);
        let reg = Registry::new();
        // A probing predicate: an exact-range COUNT would be answered from
        // resident metadata alone and leave the cache empty.
        let q = RangeQuery::all(2).with_range(0, 1, 500);
        let mut v = SumVisitor::default();
        s.execute(&q, Some(1), &mut v).unwrap();
        s.publish_gauges(&reg, "tier");
        let snap = reg.snapshot();
        assert_eq!(snap.gauge("tier", "epoch"), Some(1));
        assert_eq!(snap.gauge("tier", "swaps"), Some(1));
        assert!(snap.gauge("tier", "resident_bytes").unwrap() > 0);
    }
}
