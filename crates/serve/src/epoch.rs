//! Epoch-swapped publication: the one shared-mutable cell in the serving
//! layer.
//!
//! The live value lives behind `RwLock<Arc<Epoch<T>>>`. Readers take the
//! read lock just long enough to clone the `Arc` (nanoseconds — never for
//! the duration of a query), then execute against their private snapshot
//! with no further coordination. A publisher builds the replacement
//! entirely off the lock, then swaps the `Arc` under the write lock — the
//! only writer-side critical section is a pointer exchange.
//!
//! Retirement is `Arc` drop semantics: the swapped-out epoch stays alive
//! exactly as long as the last in-flight reader holds its snapshot, and
//! the publisher keeps only a [`Weak`] per retired epoch, so
//! [`Published::retired_epochs`] can report when old generations were
//! actually freed without ever extending their lifetime.
//!
//! [`Published<T>`] is generic: the classic serving path publishes
//! [`FloodIndex`] layouts ([`PublishedIndex`]), and the tiered path
//! publishes sealed [`TieredScan`](flood_store::TieredScan) generations —
//! whose epochs *share segment files by `Arc`*, so a pinned snapshot of a
//! retired epoch keeps exactly the segments it references loadable (the
//! cold-tier analogue of "a retired layout stays queryable until its last
//! reader lets go").

use flood_core::FloodIndex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock, Weak};

/// One published generation: an immutable value tagged with its epoch
/// number.
#[derive(Debug)]
pub struct Epoch<T> {
    epoch: u64,
    value: T,
}

impl<T> Epoch<T> {
    /// The epoch this value was published as (0 = the initial build).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The published value itself.
    pub fn value(&self) -> &T {
        &self.value
    }
}

/// One published layout generation of the classic (fully-resident) path.
pub type EpochIndex = Epoch<FloodIndex>;

impl Epoch<FloodIndex> {
    /// The index itself (alias of [`Epoch::value`], kept for the original
    /// index-serving API).
    pub fn index(&self) -> &FloodIndex {
        self.value()
    }
}

/// A reader's snapshot: a strong reference to one epoch's index. Holding
/// it pins that epoch (and nothing else) alive; dropping the last one
/// frees the retired layout.
pub type IndexSnapshot = Arc<EpochIndex>;

/// The publication point: the current epoch's value, swappable atomically
/// while readers stream through.
#[derive(Debug)]
pub struct Published<T> {
    current: RwLock<Arc<Epoch<T>>>,
    /// `(epoch, weak)` per swapped-out generation, oldest first. Weak so
    /// diagnostics never keep a retired generation alive.
    retired: Mutex<Vec<(u64, Weak<Epoch<T>>)>>,
    swaps: AtomicU64,
}

/// The classic publication point over [`FloodIndex`] layouts.
pub type PublishedIndex = Published<FloodIndex>;

impl<T> Published<T> {
    /// Publish `value` as epoch 0.
    pub fn new(value: T) -> Self {
        Published {
            current: RwLock::new(Arc::new(Epoch { epoch: 0, value })),
            retired: Mutex::new(Vec::new()),
            swaps: AtomicU64::new(0),
        }
    }

    /// Grab a snapshot of the current epoch. The read lock is held only
    /// for the `Arc` clone; queries run lock-free against the snapshot.
    pub fn snapshot(&self) -> Arc<Epoch<T>> {
        self.current
            .read()
            .expect("published value poisoned")
            .clone()
    }

    /// The current epoch number (monotone, +1 per publish).
    pub fn epoch(&self) -> u64 {
        self.current.read().expect("published value poisoned").epoch
    }

    /// Swap `value` in as the next epoch, retiring the current one.
    /// Returns the new epoch number. The caller builds `value` off the
    /// serving path; the write lock covers only the pointer exchange.
    pub fn publish(&self, value: T) -> u64 {
        let old = {
            let mut cur = self.current.write().expect("published value poisoned");
            let epoch = cur.epoch + 1;
            std::mem::replace(&mut *cur, Arc::new(Epoch { epoch, value }))
        };
        let epoch = old.epoch + 1;
        self.retired
            .lock()
            .expect("retired list poisoned")
            .push((old.epoch, Arc::downgrade(&old)));
        self.swaps.fetch_add(1, Ordering::Release);
        epoch
    }

    /// Times a new epoch was published (== current epoch number).
    pub fn swaps(&self) -> u64 {
        self.swaps.load(Ordering::Acquire)
    }

    /// Swapped-out epochs whose memory has been freed — their last
    /// in-flight reader dropped its snapshot.
    pub fn retired_epochs(&self) -> usize {
        self.retired
            .lock()
            .expect("retired list poisoned")
            .iter()
            .filter(|(_, w)| w.upgrade().is_none())
            .count()
    }

    /// In-flight readers currently pinning the *live* epoch — snapshot
    /// clones handed out and not yet dropped (the publication point's own
    /// reference excluded).
    pub fn pinned_readers(&self) -> usize {
        Arc::strong_count(&self.current.read().expect("published value poisoned")) - 1
    }

    /// Swapped-out epochs still pinned by at least one in-flight reader.
    pub fn live_retired(&self) -> usize {
        self.retired
            .lock()
            .expect("retired list poisoned")
            .iter()
            .filter(|(_, w)| w.upgrade().is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_core::{FloodBuilder, Layout};
    use flood_store::{CountVisitor, MultiDimIndex, RangeQuery, Table};

    fn table() -> Table {
        let n = 2_000u64;
        Table::from_columns(vec![
            (0..n).map(|i| i % 50).collect(),
            (0..n).map(|i| (i * 7) % 50).collect(),
            (0..n).collect(),
        ])
    }

    fn build(t: &Table, order: Vec<usize>) -> FloodIndex {
        FloodBuilder::new()
            .layout(Layout::new(order, vec![4, 4]))
            .build(t)
    }

    #[test]
    fn epochs_are_monotone_and_swaps_count() {
        let t = table();
        let p = PublishedIndex::new(build(&t, vec![0, 1, 2]));
        assert_eq!(p.epoch(), 0);
        assert_eq!(p.swaps(), 0);
        assert_eq!(p.publish(build(&t, vec![1, 0, 2])), 1);
        assert_eq!(p.publish(build(&t, vec![2, 1, 0])), 2);
        assert_eq!(p.epoch(), 2);
        assert_eq!(p.swaps(), 2);
        assert_eq!(p.snapshot().epoch(), 2);
    }

    #[test]
    fn retired_epoch_lives_until_last_reader_drops() {
        let t = table();
        let p = PublishedIndex::new(build(&t, vec![0, 1, 2]));
        let held = p.snapshot(); // in-flight reader on epoch 0
        p.publish(build(&t, vec![1, 0, 2]));
        assert_eq!(p.live_retired(), 1, "epoch 0 pinned by the reader");
        assert_eq!(p.retired_epochs(), 0);
        // The pinned snapshot still answers queries against its layout.
        let q = RangeQuery::all(3).with_range(0, 10, 20);
        let mut v = CountVisitor::default();
        held.index().execute(&q, None, &mut v);
        drop(held);
        assert_eq!(p.live_retired(), 0, "last reader gone, epoch 0 freed");
        assert_eq!(p.retired_epochs(), 1);
    }

    #[test]
    fn pinned_readers_follow_snapshot_lifetimes() {
        let t = table();
        let p = PublishedIndex::new(build(&t, vec![0, 1, 2]));
        assert_eq!(p.pinned_readers(), 0);
        let a = p.snapshot();
        let b = p.snapshot();
        assert_eq!(p.pinned_readers(), 2);
        drop(a);
        assert_eq!(p.pinned_readers(), 1);
        // A swap orphans the old epoch's readers: they pin a retired
        // epoch, not the live one.
        p.publish(build(&t, vec![1, 0, 2]));
        assert_eq!(p.pinned_readers(), 0);
        drop(b);
    }

    #[test]
    fn snapshot_is_stable_across_a_swap() {
        let t = table();
        let p = PublishedIndex::new(build(&t, vec![0, 1, 2]));
        let snap = p.snapshot();
        p.publish(build(&t, vec![1, 0, 2]));
        assert_eq!(snap.epoch(), 0, "a snapshot never migrates epochs");
        assert_eq!(p.snapshot().epoch(), 1);
    }

    #[test]
    fn published_is_generic_over_any_value() {
        // The tiered server publishes scan generations, not indexes; pin
        // the generic surface with a plain value.
        let p: Published<Vec<u64>> = Published::new(vec![1, 2, 3]);
        let snap = p.snapshot();
        assert_eq!(snap.value(), &vec![1, 2, 3]);
        p.publish(vec![4]);
        assert_eq!(snap.value(), &vec![1, 2, 3], "snapshot keeps its epoch");
        assert_eq!(p.snapshot().value(), &vec![4]);
        assert_eq!(p.snapshot().epoch(), 1);
    }
}
