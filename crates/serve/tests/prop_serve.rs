//! Property suite: serving under layout swaps is never torn.
//!
//! The contract `flood-serve` exists to uphold: under arbitrary
//! interleavings of queries and forced swaps, every result is
//! bit-identical to a serial run against *either* the old or the new
//! layout — never a mix of the two. Three generators pin it:
//!
//! 1. arbitrary tables × queries × swap/query interleavings, executed
//!    deterministically one operation at a time;
//! 2. arbitrary tables × queries × swap counts, with real reader threads
//!    racing a swapper thread;
//! 3. arbitrary tables × queries × batch sizes × swap schedules through
//!    [`FloodServer`]'s batched admission, with the aggregate
//!    [`ScanStats`] merge checked exactly as in `prop_parallel.rs`.
//!
//! Identity is checked against the *specific* epoch each result reports —
//! stronger than "old or new": a torn read would match neither layout's
//! serial stats bit-for-bit.

use flood_core::{FloodBuilder, FloodIndex, Layout};
use flood_serve::{FloodServer, PublishedIndex, ServeConfig};
use flood_store::{CollectVisitor, MultiDimIndex, RangeQuery, ScanStats, SumVisitor, Table};
use proptest::prelude::*;

/// One reader's record of a served query: (epoch, query index, sorted
/// rows, stats).
type ReaderRecord = (u64, usize, Vec<usize>, ScanStats);

/// Three columns in a small domain so queries actually match rows.
fn make_table(rows: &[(u64, u64, u64)]) -> Table {
    Table::from_columns(vec![
        rows.iter().map(|r| r.0).collect(),
        rows.iter().map(|r| r.1).collect(),
        rows.iter().map(|r| r.2).collect(),
    ])
}

/// A query filtering a subset of the three dims, from raw (lo, width)
/// pairs; width 0 means an equality filter, `None` leaves the dim
/// unbounded.
fn make_query(filters: [Option<(u64, u64)>; 3]) -> RangeQuery {
    let mut q = RangeQuery::all(3);
    for (d, f) in filters.into_iter().enumerate() {
        if let Some((lo, w)) = f {
            q = q.with_range(d, lo, lo + w);
        }
    }
    q
}

fn filter_strategy() -> impl Strategy<Value = Option<(u64, u64)>> {
    prop_oneof![
        Just(None),
        (0u64..64, 0u64..32).prop_map(Some),
        (0u64..64, 0u64..1).prop_map(Some), // near-equality
    ]
}

fn query_strategy() -> impl Strategy<Value = RangeQuery> {
    (filter_strategy(), filter_strategy(), filter_strategy())
        .prop_map(|(a, b, c)| make_query([a, b, c]))
}

/// The two layouts swaps alternate between: different dimension orders,
/// so their serial [`ScanStats`] genuinely differ on most queries.
fn layout_for_epoch(epoch: u64) -> Layout {
    if epoch % 2 == 0 {
        Layout::new(vec![0, 1, 2], vec![4, 4])
    } else {
        Layout::new(vec![2, 1, 0], vec![4, 4])
    }
}

fn build_epoch(table: &Table, epoch: u64) -> FloodIndex {
    FloodBuilder::new()
        .layout(layout_for_epoch(epoch))
        .build(table)
}

/// Serial reference: rows (sorted) + bit-exact stats for `q` on `index`.
fn reference(index: &FloodIndex, q: &RangeQuery) -> (Vec<usize>, ScanStats) {
    let mut v = CollectVisitor::default();
    let stats = index.execute(q, None, &mut v);
    let mut rows = v.rows;
    rows.sort_unstable();
    (rows, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Generator 1: deterministic interleavings. `schedule` mixes swap
    /// and query operations in arbitrary order; after every operation the
    /// snapshot's epoch, rows, and stats must match that epoch's layout
    /// exactly.
    #[test]
    fn interleaved_swaps_serve_old_or_new_never_a_mix(
        rows in proptest::collection::vec((0u64..64, 0u64..64, 0u64..64), 1..300),
        queries in proptest::collection::vec(query_strategy(), 1..8),
        schedule in proptest::collection::vec(any::<bool>(), 1..40),
    ) {
        let table = make_table(&rows);
        // References for both layouts, per query.
        let refs: Vec<[(Vec<usize>, ScanStats); 2]> = {
            let even = build_epoch(&table, 0);
            let odd = build_epoch(&table, 1);
            queries
                .iter()
                .map(|q| [reference(&even, q), reference(&odd, q)])
                .collect()
        };
        let published = PublishedIndex::new(build_epoch(&table, 0));
        let mut expected_epoch = 0u64;
        let mut qi = 0usize;
        for &is_swap in &schedule {
            if is_swap {
                expected_epoch += 1;
                prop_assert_eq!(
                    published.publish(build_epoch(&table, expected_epoch)),
                    expected_epoch
                );
            } else {
                let snap = published.snapshot();
                prop_assert_eq!(snap.epoch(), expected_epoch);
                let q = &queries[qi % queries.len()];
                let (got_rows, got_stats) = reference(snap.index(), q);
                let (want_rows, want_stats) = &refs[qi % queries.len()][(snap.epoch() % 2) as usize];
                prop_assert_eq!(&got_rows, want_rows);
                prop_assert_eq!(got_stats, *want_stats, "stats bit-identical to the epoch's layout");
                qi += 1;
            }
        }
        prop_assert_eq!(published.swaps(), expected_epoch);
        // Nothing holds retired snapshots here, so every swapped-out epoch
        // must already be freed.
        prop_assert_eq!(published.retired_epochs() as u64, expected_epoch);
        prop_assert_eq!(published.live_retired(), 0);
    }

    /// Generator 2: real races. Reader threads stream queries while a
    /// swapper publishes; every result must be bit-identical to the
    /// serial run on the epoch it reports, and each reader's observed
    /// epochs must be monotone.
    #[test]
    fn concurrent_readers_see_whole_epochs(
        rows in proptest::collection::vec((0u64..64, 0u64..64, 0u64..64), 1..200),
        queries in proptest::collection::vec(query_strategy(), 1..6),
        swaps in 1u64..5,
    ) {
        let table = make_table(&rows);
        let refs: Vec<[(Vec<usize>, ScanStats); 2]> = {
            let even = build_epoch(&table, 0);
            let odd = build_epoch(&table, 1);
            queries
                .iter()
                .map(|q| [reference(&even, q), reference(&odd, q)])
                .collect()
        };
        let published = PublishedIndex::new(build_epoch(&table, 0));
        let records: Vec<Vec<ReaderRecord>> = std::thread::scope(|scope| {
            let swapper = scope.spawn(|| {
                for e in 1..=swaps {
                    published.publish(build_epoch(&table, e));
                    std::thread::yield_now();
                }
            });
            let readers: Vec<_> = (0..2)
                .map(|_| {
                    let (published, queries) = (&published, &queries);
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        for pass in 0..3 {
                            for (qi, q) in queries.iter().enumerate() {
                                let snap = published.snapshot();
                                let (rows, stats) = reference(snap.index(), q);
                                out.push((snap.epoch(), qi, rows, stats));
                                if pass == 0 {
                                    std::thread::yield_now();
                                }
                            }
                        }
                        out
                    })
                })
                .collect();
            swapper.join().expect("swapper panicked");
            readers
                .into_iter()
                .map(|r| r.join().expect("reader panicked"))
                .collect()
        });
        for reader in &records {
            let mut last_epoch = 0u64;
            for (epoch, qi, rows, stats) in reader {
                prop_assert!(*epoch >= last_epoch, "epochs monotone per reader");
                last_epoch = *epoch;
                let (want_rows, want_stats) = &refs[*qi][(epoch % 2) as usize];
                prop_assert_eq!(rows, want_rows);
                prop_assert_eq!(stats, want_stats, "torn read: matches neither layout");
            }
        }
        prop_assert_eq!(published.epoch(), swaps);
        prop_assert_eq!(published.live_retired(), 0, "no snapshots outlive the scope");
        prop_assert_eq!(published.retired_epochs() as u64, swaps);
    }

    /// Generator 3: batched admission through [`FloodServer`] with swaps
    /// between batches. Per-query results and the aggregate [`ScanStats`]
    /// merge must equal the serial loop on each batch's snapshot, and no
    /// request may be dropped.
    #[test]
    fn batched_admission_under_swaps_matches_serial(
        rows in proptest::collection::vec((0u64..64, 0u64..64, 0u64..64), 1..300),
        queries in proptest::collection::vec(query_strategy(), 1..10),
        threads in 1usize..5,
        batch in 1usize..8,
        swap_before in proptest::collection::vec(any::<bool>(), 10),
    ) {
        let table = make_table(&rows);
        let server = FloodServer::build(
            &table,
            &queries,
            flood_core::LayoutOptimizer::with_config(
                flood_core::CostModel::analytic_default(),
                flood_core::OptimizerConfig {
                    data_sample: 128,
                    query_sample: 4,
                    gd_steps: 2,
                    max_total_cells: 1 << 8,
                    ..Default::default()
                },
            ),
            flood_core::FloodConfig::default(),
            ServeConfig {
                batch,
                threads,
                ..Default::default()
            },
        );
        let mut swaps_published = 0u64;
        let mut last_epoch = 0u64;
        let mut submitted = 0usize;
        for (ci, chunk) in queries.chunks(batch).enumerate() {
            if swap_before[ci % swap_before.len()] {
                swaps_published += 1;
                let snap = server.snapshot();
                prop_assert_eq!(
                    server.published().publish(build_epoch(snap.index().data(), swaps_published)),
                    swaps_published
                );
            }
            let snap = server.snapshot();
            let served = server.serve_batch::<SumVisitor>(chunk, Some(2));
            prop_assert_eq!(served.epoch, snap.epoch(), "one epoch per batch");
            prop_assert!(served.epoch >= last_epoch, "epochs monotone across batches");
            last_epoch = served.epoch;
            prop_assert_eq!(served.results.len(), chunk.len(), "zero dropped requests");
            let mut agg_serial = ScanStats::default();
            let mut agg_parallel = ScanStats::default();
            for (q, (v, s)) in chunk.iter().zip(&served.results) {
                let mut want = SumVisitor::default();
                let want_stats = snap.index().execute(q, Some(2), &mut want);
                prop_assert_eq!(v.sum, want.sum);
                prop_assert_eq!(v.count, want.count);
                prop_assert_eq!(*s, want_stats);
                agg_serial.merge(&want_stats);
                agg_parallel.merge(s);
            }
            prop_assert_eq!(agg_parallel, agg_serial, "aggregate stats merge exactly");
            submitted += chunk.len();
        }
        let d = server.diagnostics();
        prop_assert_eq!(d.submitted, submitted as u64);
        prop_assert_eq!(d.completed, submitted as u64);
        prop_assert_eq!(d.swaps, swaps_published);
    }

    /// Generator 4: metric conservation through the serving layer. With
    /// metrics on (the default), the registry's counters are exactly the
    /// sums of what every caller saw — no query double-counted, none
    /// dropped — across arbitrary mixes of single and batched admission
    /// and thread counts, and the latency/batch histograms count one
    /// observation per request/batch.
    #[test]
    fn server_metrics_conserve_served_traffic(
        rows in proptest::collection::vec((0u64..64, 0u64..64, 0u64..64), 1..200),
        queries in proptest::collection::vec(query_strategy(), 1..10),
        threads in 1usize..5,
        batch in 1usize..8,
        singles in 1usize..12,
    ) {
        let table = make_table(&rows);
        let server = FloodServer::build(
            &table,
            &queries,
            flood_core::LayoutOptimizer::with_config(
                flood_core::CostModel::analytic_default(),
                flood_core::OptimizerConfig {
                    data_sample: 128,
                    query_sample: 4,
                    gd_steps: 2,
                    max_total_cells: 1 << 8,
                    ..Default::default()
                },
            ),
            flood_core::FloodConfig::default(),
            ServeConfig {
                batch,
                threads,
                ..Default::default()
            },
        );

        // Mixed traffic, accumulating exactly the per-result stats the
        // callers were handed.
        let mut scan_total = ScanStats::default();
        for i in 0..singles {
            let mut v = SumVisitor::default();
            let (s, _epoch) = server.execute(&queries[i % queries.len()], Some(2), &mut v);
            scan_total.merge(&s);
        }
        let mut batches = 0u64;
        let mut batched = 0u64;
        for chunk in queries.chunks(batch) {
            let served = server.serve_batch::<SumVisitor>(chunk, Some(2));
            for (_, s) in &served.results {
                scan_total.merge(s);
            }
            batches += 1;
            batched += chunk.len() as u64;
        }
        let total = singles as u64 + batched;

        let snap = server.metrics_snapshot().expect("metrics on by default");
        prop_assert_eq!(snap.counter("serve", "queries"), Some(total));
        prop_assert_eq!(snap.counter("serve", "completed"), Some(total));
        prop_assert_eq!(snap.counter("serve", "batches"), Some(batches));
        let qh = snap.histogram("serve", "query_ns").expect("query_ns recorded");
        prop_assert_eq!(qh.count, singles as u64, "one latency sample per single request");
        let bh = snap.histogram("serve", "batch_size").expect("batch_size recorded");
        prop_assert_eq!((bh.count, bh.sum), (batches, batched), "histogram sum is exact");
        // Scan counters ≡ the merge of every per-result ScanStats.
        for (name, want) in [
            ("points_scanned", scan_total.points_scanned),
            ("points_matched", scan_total.points_matched),
            ("points_in_exact_ranges", scan_total.points_in_exact_ranges),
            ("cells_visited", scan_total.cells_visited),
            ("cells_projected", scan_total.cells_projected),
            ("refinements", scan_total.refinements),
            ("ranges_scanned", scan_total.ranges_scanned),
        ] {
            prop_assert_eq!(snap.counter("scan", name), Some(want), "scan.{}", name);
        }
        // Every batched query went through the pool exactly once; singles
        // never touch it.
        prop_assert_eq!(snap.counter("pool", "tasks"), Some(batched));
        prop_assert_eq!(
            snap.gauge("epoch", "current"),
            Some(server.snapshot().epoch() as i64)
        );
        let d = server.diagnostics();
        prop_assert_eq!(d.submitted, total);
        prop_assert_eq!(d.completed, total);
    }
}
