//! Soak: open-loop drift traffic against a [`FloodServer`] with
//! adaptation running alongside, driven long enough for every moving part
//! to cycle.
//!
//! Two drivers:
//!
//! * a *scheduled* run — the drift phases are served in order and a swap
//!   is forced at every phase boundary, so the end-state diagnostics
//!   (swaps, epochs, retired epochs, request counts) are known exactly;
//! * a *racing* run — reader threads stream drift batches while a
//!   maintenance thread polls [`FloodServer::maybe_adapt`], for a
//!   wall-clock budget (default ~1.5 s; set `FLOOD_SOAK_MS` to soak
//!   longer). Nondeterministic by design: the assertions are the
//!   invariants (no panic, zero dropped requests, monotone epochs,
//!   swap/retirement accounting), not a schedule.

use flood_core::{AdaptiveConfig, CostModel, FloodConfig, LayoutOptimizer, OptimizerConfig};
use flood_data::workloads::drift::{DriftConfig, DriftMode, DriftingWorkload};
use flood_serve::{FloodServer, ServeConfig};
use flood_store::{CountVisitor, RangeQuery, Table};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

fn table() -> Table {
    let n = 6_000u64;
    Table::from_columns(vec![
        (0..n).map(|i| (i * 7919) % 10_000).collect(),
        (0..n).map(|i| (i * 104729) % 10_000).collect(),
        (0..n).map(|i| (i * 613) % 10_000).collect(),
    ])
}

fn optimizer() -> LayoutOptimizer {
    LayoutOptimizer::with_config(
        CostModel::analytic_default(),
        OptimizerConfig {
            data_sample: 600,
            query_sample: 10,
            gd_steps: 6,
            max_total_cells: 1 << 10,
            ..Default::default()
        },
    )
}

fn drift(table: &Table, phases: usize, queries_per_phase: usize) -> DriftingWorkload {
    DriftingWorkload::generate(
        table,
        &DriftConfig {
            phases,
            queries_per_phase,
            filters_per_query: 2,
            target_selectivity: 0.005,
            mode: DriftMode::Abrupt,
            seed: 42,
        },
    )
}

/// Brute-force ground truth for a COUNT query.
fn truth(table: &Table, q: &RangeQuery) -> u64 {
    (0..table.len())
        .filter(|&r| q.matches(&table.row(r)))
        .count() as u64
}

/// The scheduled soak: serve each drift phase open-loop, force a re-learn
/// at every phase boundary, and check the diagnostics against the known
/// schedule at the end.
#[test]
fn scheduled_swaps_match_known_diagnostics() {
    let t = table();
    let d = drift(&t, 3, 48);
    let server = FloodServer::build(
        &t,
        &d.train,
        optimizer(),
        FloodConfig::default(),
        ServeConfig {
            adaptive: AdaptiveConfig {
                window: 32,
                check_every: 1_000_000, // background checks off: the schedule is ours
                ..Default::default()
            },
            batch: 16,
            threads: 2,
            metrics: true,
        },
    );

    let mut epochs_seen = Vec::new();
    let mut total = 0usize;
    for (k, phase) in d.phases.iter().enumerate() {
        for served in server.serve_stream::<CountVisitor>(&phase.queries, None) {
            epochs_seen.push(served.epoch);
            // Spot-check correctness against brute force on every batch.
            for (q, (v, _)) in phase.queries[total % phase.queries.len()..]
                .iter()
                .zip(&served.results)
            {
                assert_eq!(v.count, truth(&t, q));
            }
            total += served.results.len();
        }
        // Phase boundary: force a deterministic swap onto the next
        // phase's distribution.
        let next = &d.phases[(k + 1) % d.phases.len()];
        let epoch = server.force_relearn(&next.queries);
        assert_eq!(epoch, (k + 1) as u64, "one swap per phase boundary");
    }

    assert_eq!(total, 3 * 48, "every request served");
    // Every batch within a phase ran on that phase's epoch.
    let mut last = 0;
    for &e in &epochs_seen {
        assert!(e >= last, "epoch counter is monotone: {epochs_seen:?}");
        last = e;
    }
    let diag = server.diagnostics();
    assert_eq!(diag.epoch, 3);
    assert_eq!(diag.swaps, 3);
    assert_eq!(diag.submitted, total as u64);
    assert_eq!(diag.completed, total as u64, "zero dropped requests");
    assert_eq!(diag.observed, total as u64);
    assert_eq!(diag.adaptive.relearns, 3, "exactly the forced schedule");
    // No snapshots are held here, so every swapped-out epoch is freed.
    assert_eq!(diag.retired_epochs, 3);
    assert_eq!(diag.live_retired, 0);
}

/// The racing soak: open-loop readers + background adaptation for a
/// wall-clock budget. Asserts the invariants that must hold under any
/// interleaving.
#[test]
fn open_loop_soak_with_background_adaptation() {
    let budget = Duration::from_millis(
        std::env::var("FLOOD_SOAK_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1_500),
    );
    let t = table();
    let d = drift(&t, 4, 40);
    let server = FloodServer::build(
        &t,
        &d.train,
        optimizer(),
        FloodConfig::default(),
        ServeConfig {
            adaptive: AdaptiveConfig {
                window: 48,
                check_every: 24,
                degradation_factor: 1.2,
                ..Default::default()
            },
            batch: 16,
            threads: 1, // readers are the threads here; batches stay inline
            metrics: true,
        },
    );
    // Pin the initial epoch for the whole run: retirement accounting must
    // see it as live for as long as we hold it.
    let pinned = server.snapshot();
    let stream: Vec<RangeQuery> = d.stream().cloned().collect();
    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + budget;

    let (reader_counts, adapt_turns) = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|r| {
                let (server, stream, stop, t) = (&server, &stream, &stop, &t);
                scope.spawn(move || {
                    let mut served = 0usize;
                    let mut last_epoch = 0u64;
                    let mut offset = r * 7; // desync the two readers
                    while !stop.load(Ordering::Relaxed) {
                        let start = offset % stream.len();
                        let end = (start + 16).min(stream.len());
                        let batch = server.serve_batch::<CountVisitor>(&stream[start..end], None);
                        assert!(batch.epoch >= last_epoch, "monotone epochs per reader");
                        last_epoch = batch.epoch;
                        // Correctness under races, spot-checked on the
                        // first query of each batch.
                        let (v, _) = &batch.results[0];
                        assert_eq!(v.count, truth(t, &stream[start]));
                        served += batch.results.len();
                        offset = end % stream.len().max(1) + usize::from(end == stream.len());
                    }
                    served
                })
            })
            .collect();
        let adapter = scope.spawn(|| {
            let mut turns = 0usize;
            while !stop.load(Ordering::Relaxed) {
                server.maybe_adapt();
                turns += 1;
                std::thread::yield_now();
            }
            turns
        });
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
        let counts: Vec<usize> = readers
            .into_iter()
            .map(|h| h.join().expect("reader panicked"))
            .collect();
        (counts, adapter.join().expect("adapter panicked"))
    });

    let total: usize = reader_counts.iter().sum();
    assert!(total > 0, "the soak must actually serve traffic");
    assert!(adapt_turns > 0, "the maintenance thread must get turns");
    let diag = server.diagnostics();
    assert_eq!(diag.submitted, total as u64);
    assert_eq!(diag.completed, total as u64, "zero dropped requests");
    assert_eq!(diag.observed, total as u64);
    assert_eq!(diag.epoch, diag.swaps, "epoch counts published swaps");
    assert_eq!(
        diag.retired_epochs + diag.live_retired,
        diag.swaps as usize,
        "every swap retired exactly one epoch"
    );
    if diag.swaps > 0 {
        assert!(
            diag.live_retired >= 1,
            "the pinned epoch-0 snapshot keeps its layout alive: {diag:?}"
        );
    }
    drop(pinned);
    let after = server.diagnostics();
    assert_eq!(
        after.live_retired, 0,
        "dropping the last reader frees every retired epoch"
    );
    assert_eq!(after.retired_epochs, after.swaps as usize);
}
