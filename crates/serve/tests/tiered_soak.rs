//! Soak: open-loop traffic against a [`TieredServer`] while a maintenance
//! thread inserts + compacts new generations and an eviction thread
//! churns the cold tier underneath.
//!
//! The assertions are the invariants that must hold under any
//! interleaving:
//!
//! * zero dropped or duplicated queries — every admitted query completes,
//!   and every answer equals the exact expected count *for the epoch it
//!   was served from* (sealed-reads visibility: a generation's row count
//!   is fixed at publish time, so a torn read shows up as an off-by-N);
//! * monotone epochs per reader;
//! * no reader ever degrades: eviction churn only costs re-faults, never
//!   correctness or a typed error (the backend itself is healthy);
//! * a snapshot pinned on epoch 0 before any compaction still answers
//!   epoch 0's exact count at the very end — retired generations keep
//!   their segments loadable, and never fault on a *later* epoch's data.
//!
//! Wall-clock budget defaults to ~600 ms; set `FLOOD_SOAK_MS` to soak
//! longer.

use flood_serve::TieredServer;
use flood_store::{CountVisitor, MemBackend, RangeQuery, SumVisitor, Table, TierConfig};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

const BASE_ROWS: u64 = 2_048;

fn base_table() -> Table {
    // col0 = row id (sorted), col1 = a value column for SUM probes.
    Table::from_columns(vec![
        (0..BASE_ROWS).collect(),
        (0..BASE_ROWS).map(|i| (i * 31) % 997).collect(),
    ])
}

#[test]
fn tiered_soak_under_compaction_and_eviction_churn() {
    let budget = Duration::from_millis(
        std::env::var("FLOOD_SOAK_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(600),
    );
    let server = TieredServer::seal(
        &base_table(),
        Arc::new(MemBackend::new()),
        TierConfig {
            budget_bytes: 16 << 10, // a few segments resident, most cold
            segment_blocks: 2,
        },
    )
    .unwrap();
    let cache = server.cache();

    // Exact expected row count per published epoch. The maintenance
    // thread records the next epoch's count *before* publishing it, so
    // any epoch a reader can observe already has its entry.
    let expected: Mutex<HashMap<u64, u64>> = Mutex::new(HashMap::from([(0, BASE_ROWS)]));
    // Fixed probe: rows with id in 1..=700 exist in every epoch (the base
    // has 2 048), so its COUNT and SUM are epoch-independent — and the
    // probing bounds force cold faults instead of metadata-only answers.
    let probe = RangeQuery::all(2).with_range(0, 1, 700);
    let probe_sum: u64 = (1..=700u64).map(|i| (i * 31) % 997).sum();

    // Pin epoch 0 before any compaction retires it.
    let pinned = server.snapshot();
    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + budget;

    let (reader_counts, compactions) = std::thread::scope(|scope| {
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let (server, expected, probe, stop) = (&server, &expected, &probe, &stop);
                scope.spawn(move || {
                    let mut served = 0usize;
                    let mut last_epoch = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        // Epoch-dependent check: full COUNT == the exact
                        // count recorded for the epoch we were served from.
                        let mut v = CountVisitor::default();
                        let (_, epoch) = server
                            .execute(&RangeQuery::all(2), None, &mut v)
                            .expect("healthy backend: churn must never degrade");
                        assert!(epoch >= last_epoch, "monotone epochs per reader");
                        last_epoch = epoch;
                        let want = *expected
                            .lock()
                            .unwrap()
                            .get(&epoch)
                            .expect("every observable epoch has a recorded count");
                        assert_eq!(v.count, want, "torn read at epoch {epoch}");

                        // Cold-faulting check: probe bounds cut through
                        // blocks, so this reads segments, not metadata.
                        let mut s = SumVisitor::default();
                        let (_, e2) = server.execute(probe, Some(1), &mut s).unwrap();
                        assert!(e2 >= last_epoch);
                        last_epoch = e2;
                        assert_eq!((s.count, s.sum), (700, probe_sum));
                        served += 2;
                    }
                    served
                })
            })
            .collect();

        let maintenance = scope.spawn(|| {
            let mut total = BASE_ROWS;
            let mut compactions = 0u64;
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..32 {
                    server.insert(&[total, (total * 31) % 997]).unwrap();
                    total += 1;
                }
                // Record the next epoch's exact count BEFORE publishing:
                // a reader must never see an epoch we can't predict.
                expected.lock().unwrap().insert(server.epoch() + 1, total);
                server.compact().expect("healthy backend compaction");
                compactions += 1;
                std::thread::yield_now();
            }
            compactions
        });

        let evictor = scope.spawn(|| {
            let mut flips = 0u64;
            while !stop.load(Ordering::Relaxed) {
                cache.evict_all();
                // Alternate between "nothing stays resident" and a small
                // budget, so readers hit every residency regime.
                cache.set_budget(if flips % 2 == 0 { 0 } else { 16 << 10 });
                flips += 1;
                std::thread::yield_now();
            }
            cache.set_budget(16 << 10);
        });

        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        stop.store(true, Ordering::Relaxed);
        let counts: Vec<usize> = readers
            .into_iter()
            .map(|h| h.join().expect("reader panicked"))
            .collect();
        evictor.join().expect("evictor panicked");
        (counts, maintenance.join().expect("maintenance panicked"))
    });

    let total: usize = reader_counts.iter().sum();
    assert!(total > 0, "the soak must actually serve traffic");
    assert!(
        compactions > 0,
        "the soak must actually publish generations"
    );
    assert!(
        cache.faults() > 0,
        "the cold tier must actually be exercised"
    );
    assert!(
        cache.evictions() > 0,
        "the eviction thread must actually churn"
    );

    let diag = server.diagnostics();
    assert_eq!(diag.submitted, total as u64);
    assert_eq!(diag.completed, total as u64, "zero dropped queries");
    assert_eq!(diag.degraded, 0, "healthy backend: nothing degrades");
    assert_eq!(diag.retried, 0, "eviction is not a fault");
    assert_eq!(diag.swaps, compactions);
    assert_eq!(diag.epoch, compactions, "epoch counts published swaps");
    assert_eq!(
        diag.retired_epochs + diag.live_retired,
        compactions as usize,
        "every compaction retired exactly one generation"
    );
    assert!(
        diag.live_retired >= 1,
        "the pinned epoch-0 snapshot keeps its generation alive: {diag:?}"
    );

    // The pinned snapshot answers epoch 0's exact counts at the very end,
    // with the cache fully churned and its generation long retired.
    cache.evict_all();
    let mut v = CountVisitor::default();
    let stats = pinned
        .value()
        .try_execute(&RangeQuery::all(2), None, &mut v)
        .expect("a retired generation's segments stay loadable");
    assert_eq!(pinned.epoch(), 0);
    assert_eq!(v.count, BASE_ROWS, "retired epoch serves its own rows only");
    assert_eq!(stats.points_matched, BASE_ROWS);
    let mut s = SumVisitor::default();
    pinned.value().try_execute(&probe, Some(1), &mut s).unwrap();
    assert_eq!((s.count, s.sum), (700, probe_sum));

    drop(pinned);
    let after = server.diagnostics();
    assert_eq!(
        after.live_retired, 0,
        "dropping the last reader frees every retired generation"
    );
    assert_eq!(after.retired_epochs, compactions as usize);
}
