//! # flood-obs
//!
//! Unified observability for the Flood workspace: a lock-free metrics
//! registry and sampled structured tracing, dependency-free so every other
//! crate can report through it.
//!
//! The paper's premise is that layout decisions should follow *measured*
//! workload behavior; this crate is where those measurements live at
//! runtime rather than only inside `repro` experiments:
//!
//! * [`metrics`] — [`Counter`]/[`Gauge`]/[`Histogram`] handles behind a
//!   [`Registry`] keyed by `(subsystem, name)`. Recording is relaxed
//!   atomics only; the registry mutex is touched at registration and
//!   snapshot time. [`Histogram`] is log2-bucketed with 32 linear
//!   sub-buckets per octave, bounding percentile error to ~3.1%
//!   ([`Histogram::RELATIVE_ERROR`]) in constant memory — the same type
//!   the bench harness derives its reported percentiles from.
//!   [`MetricsSnapshot`] renders Prometheus text and JSON expositions.
//! * [`trace`] — thread-local span stacks over the query lifecycle
//!   (admit → snapshot pin → partitioned scan → merge) and the adaptation
//!   lifecycle (observe → degradation check → re-learn → epoch swap),
//!   buffered in a fixed-size ring with JSONL export. The `FLOOD_TRACE`
//!   env knob sets 1-in-N sampling; disabled, a [`trace::span`] call is
//!   one atomic load and a branch.
//!
//! `flood-serve` exposes both through `FloodServer::metrics_snapshot()`;
//! `repro --metrics PATH` dumps the process-global registry
//! ([`metrics::global`]) for any experiment. The `repro obs` experiment
//! holds the instrumented query path to a ≤5% p50 overhead budget
//! (BASELINES.md).

pub mod metrics;
pub mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSummary, MetricKind, MetricValue, MetricsSnapshot, Registry,
};
pub use trace::{span, SpanEvent, SpanGuard};

// Handles are shared across reader threads and the adaptation thread;
// anything non-Send/Sync here must fail to compile, not race.
const fn _assert_send_sync<T: Send + Sync>() {}
const _: () = {
    _assert_send_sync::<Counter>();
    _assert_send_sync::<Gauge>();
    _assert_send_sync::<Histogram>();
    _assert_send_sync::<Registry>();
    _assert_send_sync::<MetricsSnapshot>();
};
