//! The lock-free metrics layer: counters, gauges, log2-bucketed latency
//! histograms, and the [`Registry`] that names them and renders
//! expositions.
//!
//! Hot-path cost is the design constraint — metrics stay on by default in
//! the serving layer, so every update is a handful of relaxed atomic
//! read-modify-writes on handles the caller acquired once at registration
//! time. The registry's mutex guards *registration and snapshotting only*;
//! recording never takes a lock.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// A monotonically increasing counter (relaxed atomic adds).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a point-in-time signed value (queue depth, pinned readers).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Add `n` (may be negative via [`Gauge::sub`]).
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Linear sub-buckets per power of two: 2^5 = 32, bounding the relative
/// quantization error of any recorded value (and thus any derived
/// percentile) to `2^-SUB_BITS` ≈ 3.1%.
const SUB_BITS: u32 = 5;
/// Sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Mask selecting the sub-bucket bits.
const SUB_MASK: u64 = (SUB as u64) - 1;
/// Total buckets: values `< SUB` get exact unit buckets; each msb position
/// `SUB_BITS..=63` contributes `SUB` linear buckets.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Bucket index for a value (total order preserving).
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros();
    let sub = (v >> (msb - SUB_BITS)) & SUB_MASK;
    (((msb - SUB_BITS + 1) as usize) << SUB_BITS) + sub as usize
}

/// The midpoint of bucket `idx`'s value range — the representative a
/// percentile query reports.
fn bucket_mid(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = (idx >> SUB_BITS) as u32;
    let sub = (idx & (SUB - 1)) as u64;
    let msb = octave + SUB_BITS - 1;
    let width = 1u64 << (msb - SUB_BITS);
    (1u64 << msb) + sub * width + width / 2
}

/// Derived percentile summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

/// A log2-bucketed histogram with linear sub-buckets: fixed memory, relaxed
/// atomic recording, percentiles within [`Histogram::RELATIVE_ERROR`] of the
/// exact sample percentiles.
///
/// Designed for latencies in nanoseconds but domain-agnostic: any `u64`
/// distribution spanning many orders of magnitude fits, which is why the
/// bench harness derives its reported percentiles from this exact type
/// (cross-checked against sorted-sample percentiles in `flood-bench`).
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    /// Stored as the value itself; `u64::MAX` = nothing recorded yet.
    min: AtomicU64,
    max: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("summary", &self.summary())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Upper bound on `|reported − exact| / exact` for any percentile
    /// (half a sub-bucket width, plus rank rounding at tiny counts).
    pub const RELATIVE_ERROR: f64 = 1.0 / (1u64 << SUB_BITS) as f64;

    /// An empty histogram (~15 KiB of buckets).
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            buckets: buckets.into_boxed_slice().try_into().expect("BUCKETS len"),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Record one value (five relaxed atomic RMWs, no lock).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Values recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) using the same rank convention as a
    /// sorted-sample lookup: `sorted[round((len - 1) * q)]`, reported as
    /// the holding bucket's midpoint (clamped into the observed min/max so
    /// an exact-valued distribution reports exact extremes). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((count - 1) as f64 * q.clamp(0.0, 1.0)).round() as u64;
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen > rank {
                let min = self.min.load(Ordering::Relaxed);
                let max = self.max.load(Ordering::Relaxed);
                return bucket_mid(idx).clamp(min, max);
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Count, sum, min/max, and the standard percentile set.
    pub fn summary(&self) -> HistogramSummary {
        let count = self.count();
        if count == 0 {
            return HistogramSummary::default();
        }
        HistogramSummary {
            count,
            sum: self.sum(),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            p999: self.quantile(0.999),
        }
    }

    /// Fold another histogram's contents into this one (bucket-wise add —
    /// count and sum are conserved exactly).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }
}

/// What kind of metric a registry entry is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Point-in-time gauge.
    Gauge,
    /// Latency/size distribution.
    Histogram,
}

#[derive(Debug, Clone)]
enum Entry {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Entry {
    fn kind(&self) -> MetricKind {
        match self {
            Entry::Counter(_) => MetricKind::Counter,
            Entry::Gauge(_) => MetricKind::Gauge,
            Entry::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// One metric's value at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram percentile summary.
    Histogram(HistogramSummary),
}

/// A point-in-time copy of every metric in a [`Registry`], ordered by
/// `(subsystem, name)` — the exposition types render from this.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(subsystem, name, value)` rows, sorted.
    pub values: Vec<(String, String, MetricValue)>,
}

impl MetricsSnapshot {
    /// Look up one metric.
    pub fn get(&self, subsystem: &str, name: &str) -> Option<&MetricValue> {
        self.values
            .iter()
            .find(|(s, n, _)| s == subsystem && n == name)
            .map(|(_, _, v)| v)
    }

    /// A counter's value, when `(subsystem, name)` is a counter.
    pub fn counter(&self, subsystem: &str, name: &str) -> Option<u64> {
        match self.get(subsystem, name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// A gauge's value, when `(subsystem, name)` is a gauge.
    pub fn gauge(&self, subsystem: &str, name: &str) -> Option<i64> {
        match self.get(subsystem, name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// A histogram's summary, when `(subsystem, name)` is a histogram.
    pub fn histogram(&self, subsystem: &str, name: &str) -> Option<HistogramSummary> {
        match self.get(subsystem, name)? {
            MetricValue::Histogram(h) => Some(*h),
            _ => None,
        }
    }

    /// Subsystems present in this snapshot, deduplicated, in order.
    pub fn subsystems(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for (s, _, _) in &self.values {
            if out.last() != Some(&s.as_str()) {
                out.push(s);
            }
        }
        out
    }

    /// Prometheus text exposition. Counters render as
    /// `flood_<subsystem>_<name>_total`, gauges as plain values, histograms
    /// as summaries (`{quantile="…"}` series plus `_sum`/`_count`).
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for (subsystem, name, value) in &self.values {
            let base = format!("flood_{}_{}", sanitize(subsystem), sanitize(name));
            match value {
                MetricValue::Counter(v) => {
                    let full = if base.ends_with("_total") {
                        base
                    } else {
                        format!("{base}_total")
                    };
                    out.push_str(&format!("# TYPE {full} counter\n{full} {v}\n"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("# TYPE {base} gauge\n{base} {v}\n"));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!("# TYPE {base} summary\n"));
                    for (q, v) in [
                        ("0.5", h.p50),
                        ("0.9", h.p90),
                        ("0.99", h.p99),
                        ("0.999", h.p999),
                    ] {
                        out.push_str(&format!("{base}{{quantile=\"{q}\"}} {v}\n"));
                    }
                    out.push_str(&format!("{base}_sum {}\n", h.sum));
                    out.push_str(&format!("{base}_count {}\n", h.count));
                }
            }
        }
        out
    }

    /// JSON exposition: one object per subsystem, metrics as members,
    /// histograms as nested summary objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first_sub = true;
        for subsystem in self.subsystems() {
            if !first_sub {
                out.push(',');
            }
            first_sub = false;
            out.push_str(&format!("{}:{{", json_str(subsystem)));
            let mut first = true;
            for (s, name, value) in &self.values {
                if s != subsystem {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&json_str(name));
                out.push(':');
                match value {
                    MetricValue::Counter(v) => out.push_str(&v.to_string()),
                    MetricValue::Gauge(v) => out.push_str(&v.to_string()),
                    MetricValue::Histogram(h) => out.push_str(&format!(
                        "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
                        h.count, h.sum, h.min, h.max, h.p50, h.p90, h.p99, h.p999
                    )),
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Lowercase, `[a-z0-9_]` only — the Prometheus metric-name charset.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '_' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '_',
        })
        .collect()
}

/// A JSON string literal (quotes, backslashes and control chars escaped).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Names metrics and hands out shared handles. Registration is idempotent:
/// asking for the same `(subsystem, name)` again returns the *same*
/// underlying metric, so independent components can share a counter by
/// name.
///
/// # Panics
/// Registering a name that already exists with a different kind panics —
/// that is a wiring bug, not a runtime condition.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<(String, String), Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn entry(&self, subsystem: &str, name: &str, make: impl FnOnce() -> Entry) -> Entry {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        let e = entries
            .entry((subsystem.to_string(), name.to_string()))
            .or_insert_with(make);
        e.clone()
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, subsystem: &str, name: &str) -> Arc<Counter> {
        match self.entry(subsystem, name, || Entry::Counter(Arc::default())) {
            Entry::Counter(c) => c,
            e => panic!("{subsystem}.{name} already registered as {:?}", e.kind()),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, subsystem: &str, name: &str) -> Arc<Gauge> {
        match self.entry(subsystem, name, || Entry::Gauge(Arc::default())) {
            Entry::Gauge(g) => g,
            e => panic!("{subsystem}.{name} already registered as {:?}", e.kind()),
        }
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&self, subsystem: &str, name: &str) -> Arc<Histogram> {
        match self.entry(subsystem, name, || {
            Entry::Histogram(Arc::new(Histogram::new()))
        }) {
            Entry::Histogram(h) => h,
            e => panic!("{subsystem}.{name} already registered as {:?}", e.kind()),
        }
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            values: entries
                .iter()
                .map(|((s, n), e)| {
                    let v = match e {
                        Entry::Counter(c) => MetricValue::Counter(c.get()),
                        Entry::Gauge(g) => MetricValue::Gauge(g.get()),
                        Entry::Histogram(h) => MetricValue::Histogram(h.summary()),
                    };
                    (s.clone(), n.clone(), v)
                })
                .collect(),
        }
    }

    /// Prometheus text exposition of the current state.
    pub fn prometheus_text(&self) -> String {
        self.snapshot().prometheus_text()
    }

    /// JSON exposition of the current state.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// Fold `other`'s metrics into this registry: counters and histograms
    /// accumulate, gauges overwrite (latest wins). Metrics missing here are
    /// registered. Used to publish a component-local registry (e.g. one
    /// server's) into the process-global one at end of run.
    pub fn absorb(&self, other: &Registry) {
        let theirs = other.entries.lock().expect("metrics registry poisoned");
        for ((s, n), e) in theirs.iter() {
            match e {
                Entry::Counter(c) => self.counter(s, n).add(c.get()),
                Entry::Gauge(g) => self.gauge(s, n).set(g.get()),
                Entry::Histogram(h) => self.histogram(s, n).merge_from(h),
            }
        }
    }
}

/// The process-global registry — what `repro --metrics` exposes. Components
/// either register into it directly or [`Registry::absorb`] their local
/// registries into it at end of run.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_total_order_preserving_and_exact_small() {
        for v in 0..SUB as u64 {
            assert_eq!(bucket_of(v), v as usize, "unit buckets below {SUB}");
            assert_eq!(bucket_mid(v as usize), v);
        }
        let mut last = 0usize;
        for shift in 0..58 {
            let v = 37u64 << shift;
            let b = bucket_of(v);
            assert!(b >= last, "bucket_of monotone at {v}");
            last = b;
            let mid = bucket_mid(b);
            let err = (mid as f64 - v as f64).abs() / v as f64;
            assert!(
                err <= Histogram::RELATIVE_ERROR,
                "midpoint within bound at {v}: mid={mid} err={err}"
            );
        }
        assert!(bucket_of(u64::MAX) < BUCKETS);
    }

    #[test]
    fn histogram_percentiles_track_exact_sample_percentiles() {
        let h = Histogram::new();
        // A latency-shaped sample: two modes plus a heavy tail.
        let mut sample: Vec<u64> = Vec::new();
        for i in 0..1_000u64 {
            sample.push(20_000 + (i * 13) % 7_000);
        }
        for i in 0..100u64 {
            sample.push(250_000 + i * 977);
        }
        for i in 0..10u64 {
            sample.push(4_000_000 + i * 50_021);
        }
        for &v in &sample {
            h.record(v);
        }
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        let exact = |q: f64| sorted[((sorted.len() - 1) as f64 * q).round() as usize];
        for q in [0.5, 0.9, 0.99, 0.999] {
            let (got, want) = (h.quantile(q), exact(q));
            let err = (got as f64 - want as f64).abs() / want as f64;
            assert!(
                err <= Histogram::RELATIVE_ERROR,
                "q={q}: got {got}, exact {want}, err {err}"
            );
        }
        let s = h.summary();
        assert_eq!(s.count, sample.len() as u64);
        assert_eq!(s.sum, sample.iter().sum::<u64>());
        assert_eq!(s.min, *sorted.first().unwrap());
        assert_eq!(s.max, *sorted.last().unwrap());
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert_eq!(h.summary(), HistogramSummary::default());
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn merge_conserves_count_and_sum() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [1u64, 5, 100, 10_000] {
            a.record(v);
        }
        for v in [2u64, 7, 1_000_000] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 7);
        assert_eq!(a.sum(), 1 + 5 + 100 + 10_000 + 2 + 7 + 1_000_000);
        assert_eq!(a.summary().min, 1);
        assert_eq!(a.summary().max, 1_000_000);
    }

    #[test]
    fn concurrent_recording_conserves_totals() {
        let h = Histogram::new();
        let c = Counter::default();
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let (h, c) = (&h, &c);
                scope.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + (i % 97));
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn registry_shares_handles_by_name() {
        let r = Registry::new();
        let a = r.counter("scan", "points");
        let b = r.counter("scan", "points");
        a.add(3);
        b.add(4);
        assert_eq!(r.snapshot().counter("scan", "points"), Some(7));
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        r.counter("scan", "points");
        r.gauge("scan", "points");
    }

    #[test]
    fn prometheus_exposition_shape() {
        let r = Registry::new();
        r.counter("serve", "queries").add(42);
        r.gauge("epoch", "live_pinned").set(3);
        let h = r.histogram("serve", "query_ns");
        h.record(1_000);
        h.record(2_000);
        let text = r.prometheus_text();
        assert!(text.contains("# TYPE flood_serve_queries_total counter"));
        assert!(text.contains("flood_serve_queries_total 42"));
        assert!(text.contains("# TYPE flood_epoch_live_pinned gauge"));
        assert!(text.contains("flood_epoch_live_pinned 3"));
        assert!(text.contains("flood_serve_query_ns{quantile=\"0.5\"}"));
        assert!(text.contains("flood_serve_query_ns_count 2"));
        assert!(text.contains("flood_serve_query_ns_sum 3000"));
    }

    #[test]
    fn json_exposition_shape() {
        let r = Registry::new();
        r.counter("serve", "queries").add(7);
        r.histogram("serve", "query_ns").record(100);
        r.gauge("pool", "queue_depth").set(-1);
        let json = r.to_json();
        assert!(json.contains("\"serve\":{"), "{json}");
        assert!(json.contains("\"queries\":7"), "{json}");
        assert!(json.contains("\"queue_depth\":-1"), "{json}");
        assert!(json.contains("\"count\":1"), "{json}");
        // No raw control characters, balanced braces.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
    }

    #[test]
    fn absorb_accumulates_counters_and_merges_histograms() {
        let (global, local) = (Registry::new(), Registry::new());
        global.counter("scan", "points").add(10);
        local.counter("scan", "points").add(5);
        local.gauge("epoch", "current").set(4);
        local.histogram("serve", "query_ns").record(123);
        global.absorb(&local);
        let snap = global.snapshot();
        assert_eq!(snap.counter("scan", "points"), Some(15));
        assert_eq!(snap.gauge("epoch", "current"), Some(4));
        assert_eq!(snap.histogram("serve", "query_ns").unwrap().count, 1);
    }

    #[test]
    fn snapshot_lookup_and_subsystems() {
        let r = Registry::new();
        r.counter("adapt", "relearns").add(2);
        r.counter("scan", "rows").add(9);
        let snap = r.snapshot();
        assert_eq!(snap.subsystems(), vec!["adapt", "scan"]);
        assert_eq!(snap.counter("adapt", "relearns"), Some(2));
        assert!(snap.get("nope", "missing").is_none());
        assert!(snap.histogram("adapt", "relearns").is_none());
    }
}
