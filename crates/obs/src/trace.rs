//! Sampled structured tracing: thread-local span stacks recorded into a
//! fixed-size ring buffer, exported as JSON lines.
//!
//! Spans cover the query lifecycle (`admit → snapshot pin → partitioned
//! scan → merge`) and the adaptation lifecycle (`observe → degradation
//! check → re-learn → epoch swap`). Tracing is off unless the `FLOOD_TRACE`
//! environment variable names a sampling rate, so the disabled hot path is
//! one relaxed atomic load and a branch.
//!
//! `FLOOD_TRACE` semantics:
//! - unset, `0`, or `off` — tracing disabled;
//! - `1` or `on` — trace every top-level span;
//! - `N` (integer > 1) — trace one in every `N` top-level spans.
//!
//! Sampling is decided at the *top* of a span stack; child spans inherit
//! the decision, so a sampled query records its whole pin/scan/merge
//! breakdown and an unsampled one records nothing.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Sentinel: sampling rate not yet read from the environment.
const RATE_UNSET: u32 = u32::MAX;
/// `FLOOD_TRACE` parse failure or explicit off.
const RATE_OFF: u32 = 0;

/// 1-in-N sampling rate, lazily parsed from `FLOOD_TRACE`.
static RATE: AtomicU32 = AtomicU32::new(RATE_UNSET);
/// Top-level span sequence, shared across threads so `1-in-N` holds
/// process-wide rather than per-thread.
static SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Current span nesting depth on this thread.
    static DEPTH: Cell<u32> = const { Cell::new(0) };
    /// Whether the current top-level span on this thread was sampled.
    static SAMPLED: Cell<bool> = const { Cell::new(false) };
}

#[cold]
fn init_rate() -> u32 {
    let rate = match std::env::var("FLOOD_TRACE") {
        Ok(v) => match v.trim() {
            "" | "0" | "off" | "false" => RATE_OFF,
            "on" | "true" => 1,
            n => n.parse::<u32>().unwrap_or(RATE_OFF),
        },
        Err(_) => RATE_OFF,
    };
    RATE.store(rate, Ordering::Relaxed);
    rate
}

/// Current sampling rate (0 = disabled). Reads the env var once.
fn rate() -> u32 {
    let r = RATE.load(Ordering::Relaxed);
    if r == RATE_UNSET {
        init_rate()
    } else {
        r
    }
}

/// Force the sampling rate, overriding `FLOOD_TRACE`. Tests and the
/// overhead experiment use this; production code should prefer the env
/// knob.
pub fn set_sampling(every: u32) {
    RATE.store(every, Ordering::Relaxed);
}

/// True when any span would currently be recorded (rate non-zero).
pub fn enabled() -> bool {
    rate() != RATE_OFF
}

/// One completed span, as stored in the ring buffer.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Sequence number of the *top-level* span this belongs to — all spans
    /// of one sampled query/adaptation share it.
    pub trace: u64,
    /// Nesting depth (0 = top-level).
    pub depth: u32,
    /// Span name, e.g. `"query"`, `"scan"`, `"relearn"`.
    pub name: &'static str,
    /// Wall-clock duration in nanoseconds.
    pub elapsed_ns: u64,
    /// Free-form detail attached via [`SpanGuard::note`] (empty if none).
    pub detail: String,
}

impl SpanEvent {
    /// This event as one JSON object (a single JSONL line, no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut detail = String::with_capacity(self.detail.len());
        for c in self.detail.chars() {
            match c {
                '"' => detail.push_str("\\\""),
                '\\' => detail.push_str("\\\\"),
                c if (c as u32) < 0x20 => detail.push_str(&format!("\\u{:04x}", c as u32)),
                c => detail.push(c),
            }
        }
        format!(
            "{{\"trace\":{},\"depth\":{},\"span\":\"{}\",\"elapsed_ns\":{},\"detail\":\"{}\"}}",
            self.trace, self.depth, self.name, self.elapsed_ns, detail
        )
    }
}

/// Ring capacity: enough to hold the full breakdown of a few thousand
/// sampled queries without unbounded growth.
const RING_CAPACITY: usize = 8192;

struct Ring {
    events: Mutex<VecDeque<SpanEvent>>,
    dropped: AtomicU64,
}

static RING: Ring = Ring {
    events: Mutex::new(VecDeque::new()),
    dropped: AtomicU64::new(0),
};

fn push_event(ev: SpanEvent) {
    let mut events = RING.events.lock().expect("trace ring poisoned");
    if events.len() >= RING_CAPACITY {
        events.pop_front();
        RING.dropped.fetch_add(1, Ordering::Relaxed);
    }
    events.push_back(ev);
}

/// Drain and return every buffered span event (oldest first).
pub fn take_spans() -> Vec<SpanEvent> {
    let mut events = RING.events.lock().expect("trace ring poisoned");
    events.drain(..).collect()
}

/// Spans evicted from the ring because it was full, since process start.
pub fn dropped() -> u64 {
    RING.dropped.load(Ordering::Relaxed)
}

/// Drain the buffer and render it as JSON lines (one span per line).
pub fn export_jsonl() -> String {
    let mut out = String::new();
    for ev in take_spans() {
        out.push_str(&ev.to_json());
        out.push('\n');
    }
    out
}

/// An in-flight span. Created by [`span`]; records itself into the ring
/// buffer on drop. The disabled case is inert: no clock read, no
/// allocation.
pub struct SpanGuard {
    /// `None` when this span is not sampled.
    live: Option<LiveSpan>,
}

struct LiveSpan {
    trace: u64,
    depth: u32,
    name: &'static str,
    start: Instant,
    detail: String,
}

impl SpanGuard {
    /// Attach free-form detail (e.g. `"rows=1024"`). No-op when the span
    /// is not sampled, so callers can pass cheap literals unconditionally;
    /// interpolate expensive detail behind [`SpanGuard::is_sampled`].
    pub fn note(&mut self, detail: &str) {
        if let Some(live) = &mut self.live {
            if !live.detail.is_empty() {
                live.detail.push(' ');
            }
            live.detail.push_str(detail);
        }
    }

    /// Whether this span will be recorded — gate expensive detail
    /// formatting on this.
    pub fn is_sampled(&self) -> bool {
        self.live.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        DEPTH.with(|d| d.set(live.depth));
        if live.depth == 0 {
            SAMPLED.with(|s| s.set(false));
        }
        push_event(SpanEvent {
            trace: live.trace,
            depth: live.depth,
            name: live.name,
            elapsed_ns: live.start.elapsed().as_nanos() as u64,
            detail: live.detail,
        });
    }
}

/// Open a span. Top-level calls (no enclosing span on this thread) make
/// the sampling decision; nested calls inherit it. The returned guard
/// records the span when dropped.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    let rate = rate();
    if rate == RATE_OFF {
        return SpanGuard { live: None };
    }
    span_slow(name, rate)
}

fn span_slow(name: &'static str, rate: u32) -> SpanGuard {
    let depth = DEPTH.with(|d| d.get());
    let sampled = if depth == 0 {
        let seq = SEQ.fetch_add(1, Ordering::Relaxed);
        let sampled = seq % rate as u64 == 0;
        SAMPLED.with(|s| s.set(sampled));
        sampled
    } else {
        SAMPLED.with(|s| s.get())
    };
    if !sampled {
        return SpanGuard { live: None };
    }
    DEPTH.with(|d| d.set(depth + 1));
    // All spans under one top-level span share its sequence number; SEQ has
    // already advanced past the current trace's number, hence the -1.
    let trace = SEQ.load(Ordering::Relaxed).saturating_sub(1);
    SpanGuard {
        live: Some(LiveSpan {
            trace,
            depth,
            name,
            start: Instant::now(),
            detail: String::new(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The RATE/SEQ/RING statics are process-global, so the trace tests
    // serialize on one mutex to avoid cross-talk.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn reset() {
        take_spans();
        SAMPLED.with(|s| s.set(false));
        DEPTH.with(|d| d.set(0));
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        set_sampling(0);
        {
            let mut s = span("query");
            s.note("ignored");
            assert!(!s.is_sampled());
        }
        assert!(take_spans().is_empty());
        assert!(!enabled());
    }

    #[test]
    fn nested_spans_share_trace_and_depth_increments() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        set_sampling(1);
        {
            let _q = span("query");
            let _pin = span("pin");
            let _scan = span("scan");
        }
        set_sampling(0);
        let events = take_spans();
        assert_eq!(events.len(), 3, "{events:?}");
        // Drop order is innermost-first.
        assert_eq!(events[0].name, "scan");
        assert_eq!(events[0].depth, 2);
        assert_eq!(events[1].name, "pin");
        assert_eq!(events[1].depth, 1);
        assert_eq!(events[2].name, "query");
        assert_eq!(events[2].depth, 0);
        assert!(events.iter().all(|e| e.trace == events[0].trace));
    }

    #[test]
    fn one_in_n_sampling_records_a_fraction() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        set_sampling(4);
        for _ in 0..40 {
            let _s = span("query");
        }
        set_sampling(0);
        let n = take_spans().len();
        assert_eq!(n, 10, "1-in-4 of 40 top-level spans");
    }

    #[test]
    fn notes_and_jsonl_export() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        set_sampling(1);
        {
            let mut s = span("relearn");
            s.note("cause=degradation");
            s.note("epoch=3");
        }
        set_sampling(0);
        let jsonl = export_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"span\":\"relearn\""), "{jsonl}");
        assert!(jsonl.contains("cause=degradation epoch=3"), "{jsonl}");
        let parsed: serde::Value = serde_json::from_str(jsonl.trim()).expect("valid JSON line");
        drop(parsed);
        assert!(take_spans().is_empty(), "export drains the ring");
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let _g = TEST_LOCK.lock().unwrap();
        reset();
        set_sampling(1);
        let before = dropped();
        for _ in 0..(RING_CAPACITY + 10) {
            let _s = span("query");
        }
        set_sampling(0);
        assert_eq!(take_spans().len(), RING_CAPACITY);
        assert_eq!(dropped() - before, 10);
    }
}
