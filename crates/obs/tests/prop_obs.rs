//! Property suite for the flood-obs histogram: percentile accuracy against
//! the exact sorted-sample answer, and exact conservation of count/sum
//! under arbitrary partition-and-merge schedules — the invariant the
//! serving layer relies on when per-thread histograms fold into one.
//!
//! `FLOOD_PROPTEST_CASES` scales the case count (CI raises it on push).

use flood_obs::{Histogram, Registry};
use proptest::prelude::*;

/// Case-count override from `FLOOD_PROPTEST_CASES` (unset/invalid → default).
fn cases(default: u32) -> u32 {
    std::env::var("FLOOD_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// SplitMix64 — deterministic sample fill from a proptest-chosen seed.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A latency-shaped sample: values clustered around a scale with a heavy
/// tail, the distribution shape the histogram exists to summarize.
fn sample(seed: u64, len: usize, scale_shift: u32) -> Vec<u64> {
    let mut s = seed;
    (0..len)
        .map(|_| {
            let r = splitmix(&mut s);
            let base = (r % (1 << scale_shift)) + (1 << scale_shift);
            // ~3% of values land an extra 1–4 octaves out.
            if r % 33 == 0 {
                base << (1 + (r >> 32) % 4)
            } else {
                base
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    /// Every quantile the summary reports stays within the documented
    /// relative-error bound of the exact sorted-sample percentile.
    #[test]
    fn quantiles_within_documented_error(
        seed in 0u64..1_000_000,
        len in 1usize..4_000,
        scale_shift in 4u32..40,
    ) {
        let vals = sample(seed, len, scale_shift);
        let h = Histogram::new();
        for &v in &vals {
            h.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0] {
            let exact = sorted[((sorted.len() - 1) as f64 * q).round() as usize];
            let got = h.quantile(q);
            let err = (got as f64 - exact as f64).abs() / (exact.max(1)) as f64;
            prop_assert!(
                err <= Histogram::RELATIVE_ERROR,
                "q={} got={} exact={} err={}", q, got, exact, err
            );
        }
        prop_assert_eq!(h.summary().min, sorted[0]);
        prop_assert_eq!(h.summary().max, sorted[sorted.len() - 1]);
    }

    /// Partitioning a sample arbitrarily, recording each partition into its
    /// own histogram, and merging is indistinguishable (count, sum,
    /// extremes, every quantile) from recording serially into one.
    #[test]
    fn partition_merge_equals_serial(
        seed in 0u64..1_000_000,
        len in 1usize..2_000,
        parts in 1usize..8,
        scale_shift in 4u32..40,
    ) {
        let vals = sample(seed, len, scale_shift);
        let serial = Histogram::new();
        for &v in &vals {
            serial.record(v);
        }
        let merged = Histogram::new();
        for chunk in vals.chunks(vals.len().div_ceil(parts)) {
            let part = Histogram::new();
            for &v in chunk {
                part.record(v);
            }
            merged.merge_from(&part);
        }
        prop_assert_eq!(merged.summary(), serial.summary());
        for q in [0.1, 0.5, 0.95] {
            prop_assert_eq!(merged.quantile(q), serial.quantile(q));
        }
    }

    /// Absorbing per-partition registries into a fresh one conserves every
    /// counter total and histogram count, regardless of how values were
    /// split.
    #[test]
    fn registry_absorb_conserves_totals(
        seed in 0u64..1_000_000,
        len in 1usize..1_000,
        parts in 1usize..6,
    ) {
        let vals = sample(seed, len, 10);
        let global = Registry::new();
        for chunk in vals.chunks(vals.len().div_ceil(parts)) {
            let local = Registry::new();
            let c = local.counter("scan", "rows");
            let h = local.histogram("serve", "query_ns");
            for &v in chunk {
                c.inc();
                h.record(v);
            }
            global.absorb(&local);
        }
        let snap = global.snapshot();
        prop_assert_eq!(snap.counter("scan", "rows"), Some(vals.len() as u64));
        prop_assert_eq!(
            snap.histogram("serve", "query_ns").map(|h| (h.count, h.sum)),
            Some((vals.len() as u64, vals.iter().sum::<u64>()))
        );
    }
}
