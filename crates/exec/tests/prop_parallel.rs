//! Property suite: parallel execution is observably identical to serial.
//!
//! For arbitrary tables, queries and thread counts, `QueryExecutor::execute`
//! (partitioned single-query scans) and `execute_batch` produce the same
//! results and the same aggregate [`ScanStats`] as the serial
//! `MultiDimIndex::execute` path, for Count/Sum/MinMax/Collect visitors.
//! `CollectVisitor` rows are compared as sorted sets — task order is the
//! one legitimate difference.

use flood_baselines::{ClusteredIndex, FullScan};
use flood_core::{FloodBuilder, Layout};
use flood_exec::QueryExecutor;
use flood_store::{
    assert_stats_equivalent, CollectVisitor, CountVisitor, MinMaxVisitor, MultiDimIndex,
    PartitionedScan, RangeQuery, ScanMode, ScanStats, SumVisitor, Table,
};
use proptest::prelude::*;

/// Case-count override from `FLOOD_PROPTEST_CASES` (unset/invalid → default).
fn cases(default: u32) -> u32 {
    std::env::var("FLOOD_PROPTEST_CASES")
        .ok()
        .and_then(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(default)
}

/// Three columns in a small domain so queries actually match rows.
fn make_table(rows: &[(u64, u64, u64)]) -> Table {
    Table::from_columns(vec![
        rows.iter().map(|r| r.0).collect(),
        rows.iter().map(|r| r.1).collect(),
        rows.iter().map(|r| r.2).collect(),
    ])
}

/// A query filtering a subset of the three dims, from raw (lo, width) pairs;
/// width 0 means an equality filter, `None` leaves the dim unbounded.
fn make_query(filters: [Option<(u64, u64)>; 3]) -> RangeQuery {
    let mut q = RangeQuery::all(3);
    for (d, f) in filters.into_iter().enumerate() {
        if let Some((lo, w)) = f {
            q = q.with_range(d, lo, lo + w);
        }
    }
    q
}

fn filter_strategy() -> impl Strategy<Value = Option<(u64, u64)>> {
    prop_oneof![
        Just(None),
        (0u64..64, 0u64..32).prop_map(Some),
        (0u64..64, 0u64..1).prop_map(Some), // near-equality
    ]
}

/// Serial reference: plain `execute` with visitor `V`.
fn serial<V: flood_store::Visitor + Default>(
    index: &dyn MultiDimIndex,
    q: &RangeQuery,
    agg: Option<usize>,
) -> (V, ScanStats) {
    let mut v = V::default();
    let s = index.execute(q, agg, &mut v);
    (v, s)
}

/// Assert parallel == serial for every visitor kind on one index.
fn check_index(index: &dyn PartitionedScan, q: &RangeQuery, threads: usize) {
    let exec = QueryExecutor::with_threads(threads);

    let (sv, ss) = serial::<CountVisitor>(index, q, None);
    let (pv, ps) = exec.execute::<CountVisitor>(index, q, None);
    assert_eq!(pv.count, sv.count, "count, {threads} threads");
    assert_eq!(ps, ss, "count stats, {threads} threads");

    let (sv, ss) = serial::<SumVisitor>(index, q, Some(2));
    let (pv, ps) = exec.execute::<SumVisitor>(index, q, Some(2));
    assert_eq!(
        (pv.sum, pv.count),
        (sv.sum, sv.count),
        "sum, {threads} threads"
    );
    assert_eq!(ps, ss, "sum stats, {threads} threads");

    let (sv, ss) = serial::<MinMaxVisitor>(index, q, Some(1));
    let (pv, ps) = exec.execute::<MinMaxVisitor>(index, q, Some(1));
    assert_eq!(
        (pv.min, pv.max, pv.count),
        (sv.min, sv.max, sv.count),
        "minmax, {threads} threads"
    );
    assert_eq!(ps, ss, "minmax stats, {threads} threads");

    let (sv, ss) = serial::<CollectVisitor>(index, q, None);
    let (pv, ps) = exec.execute::<CollectVisitor>(index, q, None);
    let mut want = sv.rows.clone();
    let mut got = pv.rows.clone();
    want.sort_unstable();
    got.sort_unstable();
    assert_eq!(got, want, "collect rows as sets, {threads} threads");
    assert_eq!(ps, ss, "collect stats, {threads} threads");
}

/// Non-property anchor: the env-sized executor (what `FLOOD_THREADS=N`
/// selects — CI forces it to 2) agrees with serial execution end to end.
#[test]
fn env_sized_executor_matches_serial() {
    let rows: Vec<(u64, u64, u64)> = (0..5_000u64)
        .map(|i| (i % 61, (i * 7) % 53, (i * 13) % 47))
        .collect();
    let table = make_table(&rows);
    let flood = FloodBuilder::new()
        .layout(Layout::new(vec![0, 1, 2], vec![6, 6]))
        .build(&table);
    let q = make_query([Some((5, 30)), None, Some((0, 20))]);
    let exec = QueryExecutor::from_env();
    check_index(&flood, &q, exec.threads());
    let (v, s) = exec.execute::<CountVisitor>(&flood, &q, None);
    let (want, want_stats) = serial::<CountVisitor>(&flood, &q, None);
    assert_eq!(v.count, want.count);
    assert_eq!(s, want_stats);

    // Same end-to-end check with compressed storage, i.e. packed-domain
    // scanning with block skipping (the default mode under compression).
    let packed = FloodBuilder::new()
        .layout(Layout::new(vec![0, 1, 2], vec![6, 6]))
        .compress(true)
        .build(&table);
    check_index(&packed, &q, exec.threads());
    let (v, s) = exec.execute::<CountVisitor>(&packed, &q, None);
    let (want, want_stats) = serial::<CountVisitor>(&packed, &q, None);
    assert_eq!(v.count, want.count);
    assert_eq!(s, want_stats);
    let (plain_want, _) = serial::<CountVisitor>(&flood, &q, None);
    assert_eq!(
        v.count, plain_want.count,
        "compression must not change results"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    #[test]
    fn parallel_execute_equals_serial(
        rows in proptest::collection::vec((0u64..64, 0u64..64, 0u64..64), 0..400),
        f0 in filter_strategy(),
        f1 in filter_strategy(),
        f2 in filter_strategy(),
        threads in 1usize..9,
    ) {
        let table = make_table(&rows);
        let q = make_query([f0, f1, f2]);

        let flood = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![4, 4]))
            .build(&table);
        check_index(&flood, &q, threads);

        let full = FullScan::build(&table);
        check_index(&full, &q, threads);

        if !rows.is_empty() {
            let clustered = ClusteredIndex::build(&table, 0);
            check_index(&clustered, &q, threads);
        }
    }

    /// With compressed storage the default scan mode is packed: block
    /// skipping must leave parallel ≡ serial intact (full stats equality,
    /// `blocks_*` counters included — block-aligned chunking guarantees each
    /// block-subrange is classified by exactly one task), and the packed
    /// indexes must agree bit-for-bit with their decode-first twins modulo
    /// the counters only the packed path records.
    #[test]
    fn packed_scans_parallel_equal_serial_and_decode_first(
        rows in proptest::collection::vec((0u64..64, 0u64..64, 0u64..64), 0..400),
        f0 in filter_strategy(),
        f1 in filter_strategy(),
        f2 in filter_strategy(),
        threads in 1usize..9,
    ) {
        let table = make_table(&rows);
        let mut compressed = table.clone();
        compressed.compress();
        let q = make_query([f0, f1, f2]);

        let layout = || Layout::new(vec![0, 1, 2], vec![4, 4]);
        let flood = FloodBuilder::new()
            .layout(layout())
            .compress(true)
            .cumulative_sum(2)
            .build(&table);
        check_index(&flood, &q, threads);
        let decode = FloodBuilder::new()
            .layout(layout())
            .compress(true)
            .cumulative_sum(2)
            .scan_mode(ScanMode::DecodeFirst)
            .build(&table);
        let (pv, ps) = serial::<SumVisitor>(&flood, &q, Some(2));
        let (dv, ds) = serial::<SumVisitor>(&decode, &q, Some(2));
        prop_assert_eq!((pv.sum, pv.count), (dv.sum, dv.count));
        assert_stats_equivalent(&ps, &ds, "flood packed vs decode-first");

        let mut full = FullScan::build(&compressed);
        check_index(&full, &q, threads);
        let (pv, ps) = serial::<CollectVisitor>(&full, &q, None);
        full.set_scan_mode(ScanMode::DecodeFirst);
        let (dv, ds) = serial::<CollectVisitor>(&full, &q, None);
        prop_assert_eq!(&pv.rows, &dv.rows);
        assert_stats_equivalent(&ps, &ds, "full scan packed vs decode-first");

        if !rows.is_empty() {
            let mut clustered = ClusteredIndex::build(&compressed, 0);
            check_index(&clustered, &q, threads);
            let (pv, ps) = serial::<CountVisitor>(&clustered, &q, None);
            clustered.set_scan_mode(ScanMode::DecodeFirst);
            let (dv, ds) = serial::<CountVisitor>(&clustered, &q, None);
            prop_assert_eq!(pv.count, dv.count);
            assert_stats_equivalent(&ps, &ds, "clustered packed vs decode-first");
        }
    }

    #[test]
    fn batch_equals_serial_loop(
        rows in proptest::collection::vec((0u64..64, 0u64..64, 0u64..64), 1..300),
        filters in proptest::collection::vec(
            (filter_strategy(), filter_strategy(), filter_strategy()), 0..12),
        threads in 1usize..9,
    ) {
        let table = make_table(&rows);
        let queries: Vec<RangeQuery> = filters
            .into_iter()
            .map(|(a, b, c)| make_query([a, b, c]))
            .collect();
        let flood = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![4, 4]))
            .build(&table);
        let exec = QueryExecutor::with_threads(threads);

        let batch = exec.execute_batch::<SumVisitor, _>(&flood, &queries, Some(2));
        prop_assert_eq!(batch.len(), queries.len());
        let mut agg_serial = ScanStats::default();
        let mut agg_parallel = ScanStats::default();
        for (q, (v, s)) in queries.iter().zip(&batch) {
            let (want, want_stats) = serial::<SumVisitor>(&flood, q, Some(2));
            prop_assert_eq!(v.sum, want.sum);
            prop_assert_eq!(v.count, want.count);
            prop_assert_eq!(*s, want_stats);
            agg_serial.merge(&want_stats);
            agg_parallel.merge(s);
        }
        prop_assert_eq!(agg_parallel, agg_serial);

        // Collect visitors over a batch: row sets per query match too.
        let batch = exec.execute_batch::<CollectVisitor, _>(&flood, &queries, None);
        for (q, (v, _)) in queries.iter().zip(&batch) {
            let (want, _) = serial::<CollectVisitor>(&flood, q, None);
            let mut got = v.rows.clone();
            let mut exp = want.rows.clone();
            got.sort_unstable();
            exp.sort_unstable();
            prop_assert_eq!(got, exp);
        }
    }

    /// Metric conservation across the parallel merge: bridging every
    /// per-query stats record into a `flood-obs` registry accumulates
    /// exactly the serial totals (no task double-counted, none dropped,
    /// for any thread count), the pool's own accounting sees each task
    /// exactly once, and a histogram fed one observation per query reports
    /// `count` = queries and `sum` = the serial counter it mirrors.
    #[test]
    fn observed_batch_conserves_serial_totals(
        rows in proptest::collection::vec((0u64..64, 0u64..64, 0u64..64), 1..300),
        filters in proptest::collection::vec(
            (filter_strategy(), filter_strategy(), filter_strategy()), 1..10),
        threads in 1usize..9,
    ) {
        let table = make_table(&rows);
        let queries: Vec<RangeQuery> = filters
            .into_iter()
            .map(|(a, b, c)| make_query([a, b, c]))
            .collect();
        let flood = FloodBuilder::new()
            .layout(Layout::new(vec![0, 1, 2], vec![4, 4]))
            .build(&table);
        let exec = QueryExecutor::with_threads(threads);

        let registry = flood_obs::Registry::new();
        let pool = flood_exec::PoolMetrics::register(&registry, "pool");
        let scan = flood_store::ScanStatsMetrics::register(&registry, "scan");
        let per_query = registry.histogram("scan", "points_per_query");
        let batch = exec.execute_batch_observed::<CountVisitor, _>(
            &flood, &queries, None, Some(&pool));
        let mut serial_total = ScanStats::default();
        for (q, (v, s)) in queries.iter().zip(&batch) {
            scan.record(s);
            per_query.record(s.points_scanned);
            let (want, want_stats) = serial::<CountVisitor>(&flood, q, None);
            prop_assert_eq!(v.count, want.count);
            serial_total.merge(&want_stats);
        }

        let snap = registry.snapshot();
        prop_assert_eq!(snap.counter("pool", "tasks"), Some(queries.len() as u64));
        prop_assert_eq!(snap.counter("pool", "runs"), Some(1));
        for (name, want) in [
            ("points_scanned", serial_total.points_scanned),
            ("points_matched", serial_total.points_matched),
            ("cells_visited", serial_total.cells_visited),
            ("cells_projected", serial_total.cells_projected),
            ("refinements", serial_total.refinements),
            ("ranges_scanned", serial_total.ranges_scanned),
        ] {
            prop_assert_eq!(snap.counter("scan", name), Some(want), "{}", name);
        }
        let h = snap.histogram("scan", "points_per_query").expect("histogram present");
        prop_assert_eq!(h.count, queries.len() as u64);
        prop_assert_eq!(h.sum, serial_total.points_scanned);
    }
}
