//! Parallel execution over tiered storage is observably identical to the
//! serial tiered path — and, transitively, to the fully-resident scan.
//!
//! `TieredScan` plans segment-aligned chunks (`partition_ranges_aligned`),
//! so no segment is ever split across tasks: under a zero budget the
//! merged fault count equals the serial run's exactly, and under any
//! budget the shared counters (points, blocks, matches) agree with serial
//! once the residency-dependent tier counters are masked with
//! [`ScanStats::sans_tier_counters`]. A transient injected I/O fault is
//! absorbed by the per-chunk retry without duplicating or losing rows.

use flood_exec::QueryExecutor;
use flood_store::{
    CollectVisitor, CountVisitor, FailingBackend, MemBackend, MinMaxVisitor, MultiDimIndex,
    PartitionedScan, RangeQuery, ScanStats, StorageBackend, SumVisitor, Table, TierConfig,
    TieredScan, Visitor,
};
use std::sync::Arc;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn table(n: u64, seed: u64) -> Table {
    let mut s = seed;
    Table::from_columns(vec![
        (0..n).collect(),
        (0..n).map(|_| splitmix(&mut s) % 1_000).collect(),
        (0..n).map(|_| splitmix(&mut s) % 50).collect(),
    ])
}

fn seal(t: &Table, budget: usize) -> TieredScan {
    TieredScan::seal(
        t,
        Arc::new(MemBackend::new()),
        TierConfig {
            budget_bytes: budget,
            segment_blocks: 2,
        },
    )
    .unwrap()
}

fn queries() -> Vec<(RangeQuery, Option<usize>)> {
    vec![
        (RangeQuery::all(3), None),                            // match-all
        (RangeQuery::all(3).with_range(0, 1, 2_000), None),    // probing wide
        (RangeQuery::all(3).with_range(1, 100, 199), Some(1)), // ~10% + SUM
        (RangeQuery::all(3).with_range(2, 7, 7), Some(0)),     // ~2% equality
        (
            RangeQuery::all(3)
                .with_range(0, 300, 2_700)
                .with_range(1, 0, 499),
            Some(2),
        ),
        (RangeQuery::all(3).with_range(1, 5_000, 6_000), None), // empty
    ]
}

fn serial<V: Visitor + Default>(
    idx: &TieredScan,
    q: &RangeQuery,
    agg: Option<usize>,
) -> (V, ScanStats) {
    let mut v = V::default();
    let s = idx.execute(q, agg, &mut v);
    (v, s)
}

/// Mask residency-dependent counters and timing before comparing.
fn shared(s: &ScanStats) -> ScanStats {
    let mut s = s.sans_tier_counters();
    s.scan_ns = 0;
    s
}

#[test]
fn parallel_matches_serial_for_every_visitor_and_budget() {
    let t = table(4_000, 7);
    for budget in [0usize, 4 << 10, 1 << 30] {
        let idx = seal(&t, budget);
        for threads in [1usize, 2, 4] {
            let exec = QueryExecutor::with_threads(threads);
            for (q, agg) in &queries() {
                let label = format!("budget={budget} threads={threads} q={q:?}");

                let (sv, ss) = serial::<CountVisitor>(&idx, q, None);
                let (pv, ps) = exec.execute::<CountVisitor>(&idx, q, None);
                assert_eq!(pv.count, sv.count, "count, {label}");
                assert_eq!(shared(&ps), shared(&ss), "count stats, {label}");

                let (sv, ss) = serial::<SumVisitor>(&idx, q, *agg);
                let (pv, ps) = exec.execute::<SumVisitor>(&idx, q, *agg);
                assert_eq!((pv.sum, pv.count), (sv.sum, sv.count), "sum, {label}");
                assert_eq!(shared(&ps), shared(&ss), "sum stats, {label}");

                let (sv, _) = serial::<MinMaxVisitor>(&idx, q, *agg);
                let (pv, _) = exec.execute::<MinMaxVisitor>(&idx, q, *agg);
                assert_eq!((pv.min, pv.max), (sv.min, sv.max), "minmax, {label}");

                let (sv, _) = serial::<CollectVisitor>(&idx, q, None);
                let (pv, _) = exec.execute::<CollectVisitor>(&idx, q, None);
                let mut want = sv.rows;
                let mut got = pv.rows;
                want.sort_unstable();
                got.sort_unstable();
                assert_eq!(got, want, "row set, {label}");
            }
        }
    }
}

#[test]
fn zero_budget_fault_accounting_is_exact_across_tasks() {
    // Budget 0: nothing stays resident, so every needed segment faults on
    // every run — the parallel merge must reproduce serial's counters
    // exactly, because segment-aligned cuts give each segment to exactly
    // one task.
    let t = table(4_000, 11);
    let idx = seal(&t, 0);
    let q = RangeQuery::all(3).with_range(1, 100, 399);
    let (_, ss) = serial::<SumVisitor>(&idx, &q, Some(1));
    assert!(ss.segments_faulted > 0, "probing query must fault: {ss:?}");
    for threads in [2usize, 4] {
        let exec = QueryExecutor::with_threads(threads);
        let (_, ps) = exec.execute::<SumVisitor>(&idx, &q, Some(1));
        assert_eq!(
            ps.segments_faulted, ss.segments_faulted,
            "{threads} threads"
        );
        assert_eq!(
            ps.segments_skipped, ss.segments_skipped,
            "{threads} threads"
        );
        assert_eq!(ps.segments_hit, 0, "budget 0 never hits");
    }
}

#[test]
fn parallel_cuts_respect_segment_boundaries() {
    let t = table(4_000, 13);
    let idx = seal(&t, 0);
    let seg_rows = idx.data().segment_rows();
    let plan = idx.plan_scan(&RangeQuery::all(3), None, 8);
    assert!(plan.tasks() > 1, "a 4 000-row table must split at 8 tasks");
    // Indirect boundary check: merged chunk stats from a plan of any width
    // equal the serial run's — a segment split across two tasks would
    // double-count its fault under budget 0.
    let mut v = CountVisitor::default();
    let mut merged = plan.plan_stats();
    for i in 0..plan.tasks() {
        let mut s = ScanStats::default();
        plan.run_task(i, &mut v, &mut s);
        merged.merge(&s);
    }
    let (sv, ss) = serial::<CountVisitor>(&idx, &RangeQuery::all(3), None);
    assert_eq!(v.count, sv.count);
    assert_eq!(shared(&merged), shared(&ss));
    assert_eq!(merged.segments_faulted, ss.segments_faulted);
    assert!(seg_rows >= 256, "segment_blocks=2 → 256-row segments");
}

#[test]
fn transient_fault_under_parallel_execution_heals_per_chunk() {
    let failing = Arc::new(FailingBackend::new(Arc::new(MemBackend::new())));
    let t = table(2_048, 17);
    let idx = TieredScan::new(
        flood_store::TieredTable::seal(
            &t,
            failing.clone() as Arc<dyn StorageBackend>,
            TierConfig {
                budget_bytes: 0,
                segment_blocks: 2,
            },
        )
        .unwrap(),
    );
    let q = RangeQuery::all(3).with_range(1, 0, 499);
    let (want, _) = serial::<CountVisitor>(&idx, &q, None);

    // One injected failure somewhere in the parallel run: the owning
    // chunk retries and the merged result is complete and unduplicated.
    let exec = QueryExecutor::with_threads(4);
    failing.fail_load(3);
    let (got, _) = exec.execute::<CountVisitor>(&idx, &q, None);
    assert_eq!(got.count, want.count, "retry lost or duplicated rows");
    assert_eq!(failing.injected(), 1, "the injection actually fired");
}
