//! A hand-rolled scoped thread pool.
//!
//! rayon is not vendored (the build environment has no crates.io access),
//! so the pool is built from `std` alone: [`std::thread::scope`] workers
//! pulling task indices from a shared atomic injector. The pool holds no
//! long-lived threads — workers live exactly as long as one [`ThreadPool::run`]
//! call, so borrowed data (tables, plans, queries) flows into tasks without
//! `Arc` or `'static` bounds.
//!
//! With one thread (the degenerate mode) nothing is spawned at all: tasks
//! run inline on the caller's stack, making the serial path zero-overhead
//! and trivially deadlock-free.
//!
//! Paper map: the paper's evaluation is single-threaded ("Flood is
//! currently single threaded", §7) and §8 sketches intra-query parallelism
//! as future work; this pool is the substrate that turns the sketch into
//! the measured `repro threads` experiment. Scoped (per-call) workers were
//! chosen over a resident pool because every paper-shaped workload is a
//! burst of scans over borrowed `Table`s — there is no long-lived server
//! loop to amortize thread startup against, and scoped lifetimes let scan
//! plans borrow straight from the index with no reference counting.

use flood_obs::{Counter, Gauge, Registry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Environment variable overriding the default worker count
/// ([`ThreadPool::from_env`]).
pub const THREADS_ENV: &str = "FLOOD_THREADS";

/// Registered handles for the pool's telemetry — counters and gauges the
/// pool updates while [`ThreadPool::run_observed`] executes. Register once
/// against a `flood-obs` registry, pass by reference into observed runs.
#[derive(Debug, Clone)]
pub struct PoolMetrics {
    /// Tasks executed.
    tasks: Arc<Counter>,
    /// `run` invocations (batches).
    runs: Arc<Counter>,
    /// Wall-clock nanoseconds workers spent inside task closures, summed
    /// across workers (busy time, not elapsed time).
    busy_ns: Arc<Counter>,
    /// Tasks still unclaimed by any worker right now.
    queue_depth: Arc<Gauge>,
    /// Workers participating in the current (or last) run.
    workers: Arc<Gauge>,
}

impl PoolMetrics {
    /// Register (or look up) the pool metric set under `subsystem`.
    pub fn register(registry: &Registry, subsystem: &str) -> Self {
        PoolMetrics {
            tasks: registry.counter(subsystem, "tasks"),
            runs: registry.counter(subsystem, "runs"),
            busy_ns: registry.counter(subsystem, "busy_ns"),
            queue_depth: registry.gauge(subsystem, "queue_depth"),
            workers: registry.gauge(subsystem, "workers"),
        }
    }
}

/// A scoped thread pool of a fixed worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool of `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads >= 1, "a thread pool needs at least one worker");
        ThreadPool { threads }
    }

    /// The degenerate single-thread pool: every task runs inline on the
    /// caller's stack.
    pub fn serial() -> Self {
        ThreadPool { threads: 1 }
    }

    /// Worker count from the environment: `FLOOD_THREADS` when set,
    /// otherwise the machine's available parallelism (1 when that is
    /// unknown).
    ///
    /// # Panics
    /// Panics when `FLOOD_THREADS` is set but not a positive integer — a
    /// misconfigured pool must not silently run serial (same hardening as
    /// `repro --threads`).
    pub fn from_env() -> Self {
        let threads = match std::env::var(THREADS_ENV) {
            Ok(v) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => panic!("{THREADS_ENV} must be a positive integer, got {v:?}"),
            },
            Err(_) => std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        };
        ThreadPool { threads }
    }

    /// Number of workers this pool runs.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `work(0..tasks)`, returning the results in task order.
    ///
    /// Tasks are distributed dynamically: each worker repeatedly claims the
    /// next unclaimed index from a shared injector, so uneven task costs
    /// balance themselves. At most `min(threads, tasks)` workers spawn;
    /// with one worker (or one task) everything runs inline.
    ///
    /// # Panics
    /// Propagates a panic from any task after all workers have stopped.
    pub fn run<T, F>(&self, tasks: usize, work: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        self.run_observed(tasks, work, None)
    }

    /// [`ThreadPool::run`] with optional telemetry: when `obs` is set, the
    /// run counts its tasks, accumulates worker busy time, and tracks the
    /// injector's remaining depth in the registered [`PoolMetrics`]. With
    /// `obs == None` this is exactly `run` — no clock reads, no atomics
    /// beyond the injector.
    pub fn run_observed<T, F>(&self, tasks: usize, work: F, obs: Option<&PoolMetrics>) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        let workers = self.threads.min(tasks);
        if let Some(m) = obs {
            m.runs.inc();
            m.tasks.add(tasks as u64);
            m.workers.set(workers.max(1) as i64);
            m.queue_depth.set(tasks as i64);
        }
        if workers <= 1 {
            let out = (0..tasks)
                .map(|i| {
                    let Some(m) = obs else { return work(i) };
                    let start = Instant::now();
                    let t = work(i);
                    m.busy_ns.add(start.elapsed().as_nanos() as u64);
                    m.queue_depth.set((tasks - i - 1) as i64);
                    t
                })
                .collect();
            if let Some(m) = obs {
                m.queue_depth.set(0);
            }
            return out;
        }
        let next = AtomicUsize::new(0);
        let mut collected: Vec<(usize, T)> = Vec::with_capacity(tasks);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let (next, work) = (&next, &work);
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut busy_ns = 0u64;
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= tasks {
                                break;
                            }
                            if let Some(m) = obs {
                                m.queue_depth.set((tasks - i - 1) as i64);
                                let start = Instant::now();
                                out.push((i, work(i)));
                                busy_ns += start.elapsed().as_nanos() as u64;
                            } else {
                                out.push((i, work(i)));
                            }
                        }
                        if let Some(m) = obs {
                            m.busy_ns.add(busy_ns);
                        }
                        out
                    })
                })
                .collect();
            for h in handles {
                collected.extend(h.join().expect("pool worker panicked"));
            }
        });
        if let Some(m) = obs {
            m.queue_depth.set(0);
        }
        collected.sort_unstable_by_key(|&(i, _)| i);
        collected.into_iter().map(|(_, t)| t).collect()
    }
}

impl Default for ThreadPool {
    /// [`ThreadPool::from_env`].
    fn default() -> Self {
        ThreadPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_task_order() {
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            let out = pool.run(100, |i| i * i);
            assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_tasks_is_empty() {
        assert!(ThreadPool::new(4).run(0, |i| i).is_empty());
    }

    #[test]
    fn single_task_runs_inline() {
        // One task never spawns: the closure can prove it ran on the
        // caller's thread.
        let caller = std::thread::current().id();
        let out = ThreadPool::new(8).run(1, |_| std::thread::current().id());
        assert_eq!(out, vec![caller]);
    }

    #[test]
    fn serial_pool_runs_on_caller_stack() {
        let caller = std::thread::current().id();
        let ids = ThreadPool::serial().run(16, |_| std::thread::current().id());
        assert!(ids.iter().all(|&id| id == caller));
    }

    #[test]
    fn uneven_tasks_all_complete() {
        let pool = ThreadPool::new(4);
        let out = pool.run(37, |i| {
            // Task cost varies by two orders of magnitude.
            let spins = if i % 7 == 0 { 100_000 } else { 1_000 };
            (0..spins).fold(i as u64, |a, x| a.wrapping_add(x))
        });
        assert_eq!(out.len(), 37);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_threads_panics() {
        let _ = ThreadPool::new(0);
    }

    #[test]
    fn from_env_has_at_least_one_worker() {
        assert!(ThreadPool::from_env().threads() >= 1);
    }

    #[test]
    fn observed_run_counts_every_task() {
        for threads in [1, 4] {
            let reg = Registry::new();
            let m = PoolMetrics::register(&reg, "pool");
            let out = ThreadPool::new(threads).run_observed(
                25,
                |i| {
                    // Make busy time measurable even at nanosecond clocks.
                    (0..2_000).fold(i as u64, |a, x| a.wrapping_add(x))
                },
                Some(&m),
            );
            assert_eq!(out.len(), 25);
            let snap = reg.snapshot();
            assert_eq!(snap.counter("pool", "tasks"), Some(25), "{threads} thr");
            assert_eq!(snap.counter("pool", "runs"), Some(1));
            assert!(snap.counter("pool", "busy_ns").unwrap() > 0);
            assert_eq!(snap.gauge("pool", "queue_depth"), Some(0), "drained");
            let workers = snap.gauge("pool", "workers").unwrap();
            assert!(workers >= 1 && workers <= threads as i64);
        }
    }

    #[test]
    fn observed_and_unobserved_runs_agree() {
        let reg = Registry::new();
        let m = PoolMetrics::register(&reg, "pool");
        let pool = ThreadPool::new(3);
        let plain = pool.run(40, |i| i * 3);
        let observed = pool.run_observed(40, |i| i * 3, Some(&m));
        assert_eq!(plain, observed);
    }
}
