//! The query executor: parallel single-query scans and batched queries.
//!
//! Paper map: §8's concurrency remark — "different cells can be refined
//! and scanned simultaneously. This can be especially useful for large
//! queries" — is the latency mode ([`QueryExecutor::execute`]): Table 2
//! splits a Flood query into projection (SO/TPS), refinement (IT) and scan
//! (ST) phases, and only the scan phase scales with data volume, so that
//! is the phase split across workers. Projection and refinement stay on
//! the calling thread, exactly as the serial §3.2 pipeline runs them. The
//! throughput mode ([`QueryExecutor::execute_batch`]) is the independent
//! complement for OLAP workloads like §7.3's: whole queries are
//! independent units of work, so any [`MultiDimIndex`] — baselines
//! included — benefits without implementing partitioning. `repro threads`
//! sweeps both modes; BASELINES.md records the numbers and the 1-vCPU
//! caveat of the reference machine.

use crate::pool::{PoolMetrics, ThreadPool};
use flood_store::{MergeVisitor, MultiDimIndex, PartitionedScan, RangeQuery, ScanStats, Visitor};

/// How many tasks to plan per worker. Over-partitioning lets the dynamic
/// injector smooth out cells of very different population; the factor is
/// small because each task re-enters the scan kernel.
const TASKS_PER_THREAD: usize = 4;

/// Schedules query execution over a [`ThreadPool`].
///
/// Two modes, composable with any visitor:
///
/// * [`QueryExecutor::execute`] — *intra-query* parallelism: one query's
///   scan work, partitioned by the index via [`PartitionedScan`], spread
///   across workers (latency-oriented).
/// * [`QueryExecutor::execute_batch`] — *inter-query* parallelism: many
///   queries scheduled across workers, one visitor per query
///   (throughput-oriented; works with every [`MultiDimIndex`], baselines
///   included).
#[derive(Debug, Clone, Copy, Default)]
pub struct QueryExecutor {
    pool: ThreadPool,
}

impl QueryExecutor {
    /// An executor over the given pool.
    pub fn new(pool: ThreadPool) -> Self {
        QueryExecutor { pool }
    }

    /// An executor with `threads` workers.
    ///
    /// # Panics
    /// Panics if `threads == 0`.
    pub fn with_threads(threads: usize) -> Self {
        QueryExecutor {
            pool: ThreadPool::new(threads),
        }
    }

    /// An executor sized by `FLOOD_THREADS` / available parallelism
    /// ([`ThreadPool::from_env`]).
    pub fn from_env() -> Self {
        QueryExecutor {
            pool: ThreadPool::from_env(),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The underlying pool.
    pub fn pool(&self) -> ThreadPool {
        self.pool
    }

    /// Execute one query with its scan work split across the pool.
    ///
    /// Planning (projection/refinement) runs on the calling thread; each
    /// scan task accumulates into its own `V`, merged deterministically at
    /// the end. The result and the aggregate [`ScanStats`] are identical to
    /// the serial [`MultiDimIndex::execute`] up to visitor ordering (a
    /// `CollectVisitor` sees rows in task order, not global row order) and
    /// `scan_ns` (wall-clock now overlaps across workers).
    pub fn execute<V>(
        &self,
        index: &dyn PartitionedScan,
        query: &RangeQuery,
        agg_dim: Option<usize>,
    ) -> (V, ScanStats)
    where
        V: MergeVisitor + Default,
    {
        // One task per worker-share; a single thread plans a single task so
        // the degenerate mode is exactly the serial path.
        let max_tasks = if self.threads() == 1 {
            1
        } else {
            self.threads() * TASKS_PER_THREAD
        };
        let plan = index.plan_scan(query, agg_dim, max_tasks);
        let mut stats = plan.plan_stats();
        let partials = self.pool.run(plan.tasks(), |i| {
            let mut v = V::default();
            let mut s = ScanStats::default();
            plan.run_task(i, &mut v, &mut s);
            (v, s)
        });
        let mut merged = V::default();
        for (v, s) in partials {
            merged.merge_from(v);
            stats.merge(&s);
        }
        (merged, stats)
    }

    /// Execute a batch of queries across the pool, one visitor per query.
    ///
    /// Returns `(visitor, stats)` per query, in input order — exactly what
    /// a serial loop over [`MultiDimIndex::execute`] produces. Queries are
    /// claimed dynamically, so a batch of mixed-cost queries stays
    /// balanced.
    pub fn execute_batch<V, I>(
        &self,
        index: &I,
        queries: &[RangeQuery],
        agg_dim: Option<usize>,
    ) -> Vec<(V, ScanStats)>
    where
        V: Visitor + Default + Send,
        I: MultiDimIndex + Sync + ?Sized,
    {
        self.pool.run(queries.len(), |i| {
            let mut v = V::default();
            let s = index.execute(&queries[i], agg_dim, &mut v);
            (v, s)
        })
    }

    /// [`QueryExecutor::execute_batch`] with optional pool telemetry: when
    /// `obs` is set, the run's task count, worker busy time and injector
    /// depth are recorded into the registered [`PoolMetrics`].
    ///
    /// A separate method rather than a field because `QueryExecutor` is
    /// deliberately `Copy` — handles travel with the caller (the serving
    /// layer), not the executor.
    pub fn execute_batch_observed<V, I>(
        &self,
        index: &I,
        queries: &[RangeQuery],
        agg_dim: Option<usize>,
        obs: Option<&PoolMetrics>,
    ) -> Vec<(V, ScanStats)>
    where
        V: Visitor + Default + Send,
        I: MultiDimIndex + Sync + ?Sized,
    {
        self.pool.run_observed(
            queries.len(),
            |i| {
                let mut v = V::default();
                let s = index.execute(&queries[i], agg_dim, &mut v);
                (v, s)
            },
            obs,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flood_store::{scan_filtered, ChunkedScanPlan, CountVisitor, SumVisitor, Table};

    /// A minimal PartitionedScan over a plain table (full-scan semantics),
    /// exercising the executor without pulling in flood-core.
    struct ChunkScan {
        data: Table,
    }

    struct Counter<'a> {
        inner: &'a mut dyn Visitor,
        matched: u64,
    }

    impl Visitor for Counter<'_> {
        fn visit(&mut self, row: usize, value: u64) {
            self.matched += 1;
            self.inner.visit(row, value);
        }

        fn needs_value(&self) -> bool {
            self.inner.needs_value()
        }
    }

    impl MultiDimIndex for ChunkScan {
        fn execute(
            &self,
            query: &RangeQuery,
            agg_dim: Option<usize>,
            visitor: &mut dyn Visitor,
        ) -> ScanStats {
            let mut stats = ScanStats {
                ranges_scanned: 1,
                ..Default::default()
            };
            let mut counter = Counter {
                inner: visitor,
                matched: 0,
            };
            scan_filtered(
                &self.data,
                query,
                0,
                self.data.len(),
                agg_dim,
                &mut counter,
                &mut stats,
            );
            stats.points_matched = counter.matched;
            stats
        }

        fn index_size_bytes(&self) -> usize {
            0
        }

        fn name(&self) -> &'static str {
            "ChunkScan"
        }
    }

    impl PartitionedScan for ChunkScan {
        fn plan_scan(
            &self,
            query: &RangeQuery,
            agg_dim: Option<usize>,
            max_tasks: usize,
        ) -> Box<dyn flood_store::ScanPlan + '_> {
            Box::new(ChunkedScanPlan::new(
                &self.data,
                Some(query.clone()),
                agg_dim,
                None,
                flood_store::ScanMode::default(),
                &[(0, self.data.len())],
                max_tasks,
                ScanStats {
                    ranges_scanned: 1,
                    ..Default::default()
                },
            ))
        }
    }

    fn index() -> ChunkScan {
        let n = 10_000u64;
        ChunkScan {
            data: Table::from_columns(vec![
                (0..n).map(|i| i % 1_000).collect(),
                (0..n).map(|i| (i * 7) % 500).collect(),
            ]),
        }
    }

    #[test]
    fn parallel_execute_matches_serial() {
        let idx = index();
        let q = RangeQuery::all(2).with_range(0, 100, 400);
        let mut serial = CountVisitor::default();
        let serial_stats = idx.execute(&q, None, &mut serial);
        for threads in [1, 2, 4, 8] {
            let exec = QueryExecutor::with_threads(threads);
            let (par, stats) = exec.execute::<CountVisitor>(&idx, &q, None);
            assert_eq!(par.count, serial.count, "{threads} threads");
            assert_eq!(stats, serial_stats, "{threads} threads");
        }
    }

    #[test]
    fn batch_matches_serial_loop() {
        let idx = index();
        let queries: Vec<RangeQuery> = (0..17)
            .map(|i| RangeQuery::all(2).with_range(0, i * 50, i * 50 + 99))
            .collect();
        let exec = QueryExecutor::with_threads(4);
        let batch = exec.execute_batch::<SumVisitor, _>(&idx, &queries, Some(1));
        assert_eq!(batch.len(), queries.len());
        for (q, (v, s)) in queries.iter().zip(&batch) {
            let mut want = SumVisitor::default();
            let want_stats = idx.execute(q, Some(1), &mut want);
            assert_eq!(v.sum, want.sum);
            assert_eq!(v.count, want.count);
            assert_eq!(*s, want_stats);
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let idx = index();
        let exec = QueryExecutor::from_env();
        let out = exec.execute_batch::<CountVisitor, _>(&idx, &[], None);
        assert!(out.is_empty());
    }

    #[test]
    fn empty_table_executes() {
        let idx = ChunkScan {
            data: Table::from_columns(vec![vec![], vec![]]),
        };
        let exec = QueryExecutor::with_threads(4);
        let (v, stats) = exec.execute::<CountVisitor>(&idx, &RangeQuery::all(2), None);
        assert_eq!(v.count, 0);
        assert_eq!(stats.points_matched, 0);
    }
}
