//! # flood-exec
//!
//! Parallel query execution for the Flood workspace — the concurrency the
//! paper sketches in §8 ("different cells can be refined and scanned
//! simultaneously") as a real subsystem:
//!
//! * [`ThreadPool`] — a hand-rolled scoped thread pool (`std` only; rayon
//!   is not vendored): workers under [`std::thread::scope`] pull task
//!   indices from a shared atomic injector, so borrowed tables and plans
//!   flow into tasks without `Arc`. One thread means nothing spawns — the
//!   degenerate mode runs on the caller's stack. Sized explicitly, or via
//!   the `FLOOD_THREADS` environment variable ([`ThreadPool::from_env`]).
//! * [`QueryExecutor::execute`] — intra-query parallelism: an index that
//!   implements `flood_store::PartitionedScan` (Flood, plus the full-scan
//!   and clustered baselines) plans its cell ranges into balanced,
//!   `BLOCK_LEN`-aligned tasks; each worker scans into a thread-local
//!   visitor and `ScanStats`, merged deterministically at the end.
//! * [`QueryExecutor::execute_batch`] — inter-query parallelism for
//!   throughput workloads: a batch of `RangeQuery`s scheduled across the
//!   pool, one visitor per query, results in input order. Works with every
//!   `MultiDimIndex`.
//!
//! Parallel and serial execution are result- and stats-equivalent (the
//! property suite in `tests/prop_parallel.rs` pins this for Count/Sum/
//! MinMax/Collect visitors); only visitor ordering and `scan_ns` may
//! differ.
//!
//! Paper map: §8 "Other Optimizations" (concurrency) → [`exec`] and the
//! `repro threads` experiment; the phase anatomy that motivates splitting
//! only the scan (Table 2's SO/TPS/IT/ST breakdown) → [`exec`]'s module
//! docs; the balanced, block-aligned task planning → `flood_store`'s
//! `partition` module. Measured scaling lives in BASELINES.md — note the
//! reference machine has one vCPU, so its tables pin overhead, not
//! speedup.
//!
//! ```
//! use flood_exec::{QueryExecutor, ThreadPool};
//! use flood_store::{CountVisitor, RangeQuery, Table};
//! use flood_baselines::FullScan;
//!
//! let table = Table::from_columns(vec![(0..10_000u64).collect()]);
//! let index = FullScan::build(&table);
//! let exec = QueryExecutor::new(ThreadPool::new(4));
//!
//! // One query, scan split across 4 workers.
//! let q = RangeQuery::all(1).with_range(0, 1_000, 4_999);
//! let (count, _stats) = exec.execute::<CountVisitor>(&index, &q, None);
//! assert_eq!(count.count, 4_000);
//!
//! // A batch of queries, one worker each.
//! let batch: Vec<RangeQuery> =
//!     (0..8).map(|i| RangeQuery::all(1).with_range(0, i * 100, i * 100 + 49)).collect();
//! let results = exec.execute_batch::<CountVisitor, _>(&index, &batch, None);
//! assert!(results.iter().all(|(v, _)| v.count == 50));
//! ```

pub mod exec;
pub mod pool;

pub use exec::QueryExecutor;
pub use pool::{PoolMetrics, ThreadPool, THREADS_ENV};
